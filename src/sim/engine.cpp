#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "core/error.h"
#include "core/logging.h"
#include "telemetry/telemetry.h"

namespace ca {

#if CA_TELEMETRY
namespace {

/**
 * Registry handles for the sim counters, resolved once per process. The
 * hot loop never touches these: feed() flushes chunk-level deltas on
 * exit, so the per-symbol path is identical with telemetry on or off and
 * the disabled path costs one branch per feed() call.
 */
struct SimCounters
{
    telemetry::Counter &symbols;
    telemetry::Counter &activeStates;
    telemetry::Counter &activePartitionCycles;
    telemetry::Counter &g1Crossings;
    telemetry::Counter &g4Crossings;
    telemetry::Counter &reports;
    telemetry::Counter &fifoRefills;
    telemetry::Counter &outputBufferInterrupts;
    telemetry::Counter &kernelSparseSymbols;
    telemetry::Counter &kernelDenseSymbols;
    telemetry::Counter &kernelSwitches;
    telemetry::Histogram &feedSymbols;

    static SimCounters &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::global();
        static SimCounters c{
            reg.counter("ca.sim.symbols"),
            reg.counter("ca.sim.active_states"),
            reg.counter("ca.sim.active_partition_cycles"),
            reg.counter("ca.sim.g1_crossings"),
            reg.counter("ca.sim.g4_crossings"),
            reg.counter("ca.sim.reports"),
            reg.counter("ca.sim.fifo_refills"),
            reg.counter("ca.sim.output_buffer_interrupts"),
            reg.counter("ca.sim.kernel_sparse_symbols"),
            reg.counter("ca.sim.kernel_dense_symbols"),
            reg.counter("ca.sim.kernel_switches"),
            reg.histogram("ca.sim.feed_symbols"),
        };
        return c;
    }
};

} // namespace
#endif // CA_TELEMETRY

ActivityStats
SimResult::activity() const
{
    ActivityStats a;
    if (symbols == 0)
        return a;
    double n = static_cast<double>(symbols);
    a.avgActivePartitions =
        static_cast<double>(totalActivePartitionCycles) / n;
    a.avgActiveStates = static_cast<double>(totalActiveStates) / n;
    a.avgG1Crossings = static_cast<double>(totalG1Crossings) / n;
    a.avgG4Crossings = static_cast<double>(totalG4Crossings) / n;
    return a;
}

double
SimResult::avgActiveStates() const
{
    return symbols == 0
        ? 0.0
        : static_cast<double>(totalActiveStates) /
            static_cast<double>(symbols);
}

double
SimResult::seconds(double freq_hz) const
{
    return static_cast<double>(cycles) / freq_hz;
}

namespace {

/** Null-checks before the delegating ctor dereferences. */
const MappedAutomaton &
requireAutomaton(const std::shared_ptr<const MappedAutomaton> &mapped)
{
    CA_FATAL_IF(!mapped, "CacheAutomatonSim: null mapped automaton");
    return *mapped;
}

/** Dense-kernel partition geometry (§2.2: 256 STEs per 8 KB array). */
constexpr uint32_t kSlotsPerPartition = 256;
constexpr uint32_t kWordsPerPartition = kSlotsPerPartition / 64;

} // namespace

std::optional<SimKernel>
parseKernelName(std::string_view name)
{
    if (name == "sparse")
        return SimKernel::Sparse;
    if (name == "dense")
        return SimKernel::Dense;
    if (name == "auto")
        return SimKernel::Auto;
    return std::nullopt;
}

const char *
kernelName(SimKernel k)
{
    switch (k) {
    case SimKernel::Sparse:
        return "sparse";
    case SimKernel::Dense:
        return "dense";
    case SimKernel::Auto:
        return "auto";
    }
    return "auto";
}

std::optional<SimKernel>
simKernelEnvOverride()
{
    static const std::optional<SimKernel> parsed = [] {
        std::optional<SimKernel> out;
        const char *env = std::getenv("CA_SIM_KERNEL");
        if (!env || !*env)
            return out;
        out = parseKernelName(env);
        if (!out) {
            CA_WARN("CA_SIM_KERNEL=" << env
                                     << " is not sparse/dense/auto; "
                                        "falling back to auto");
            out = SimKernel::Auto;
        }
        return out;
    }();
    return parsed;
}

CacheAutomatonSim::CacheAutomatonSim(
    std::shared_ptr<const MappedAutomaton> mapped, const SimOptions &opts)
    : CacheAutomatonSim(requireAutomaton(mapped), opts)
{
    owned_ = std::move(mapped);
}

CacheAutomatonSim::CacheAutomatonSim(const MappedAutomaton &mapped,
                                     const SimOptions &opts)
    : mapped_(mapped), opts_(opts)
{
    const Nfa &nfa = mapped.nfa();
    partition_of_.resize(nfa.numStates());
    cross_flags_.assign(nfa.numStates(), 0);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        partition_of_[s] = mapped.location(s).partition;
        if (nfa.state(s).start == StartType::AllInput)
            all_input_.push_back(s);
    }
    for (const CrossEdge &e : mapped.crossEdges())
        cross_flags_[e.from] |= e.viaG4 ? 2 : 1;

    // Flatten labels, successors, and report attributes so the per-symbol
    // loop touches dense arrays instead of NfaState objects.
    labels_.resize(nfa.numStates() * 4);
    report_info_.resize(nfa.numStates());
    succ_xadj_.assign(nfa.numStates() + 1, 0);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const NfaState &st = nfa.state(s);
        const auto &words = st.label.raw();
        for (int w = 0; w < 4; ++w)
            labels_[s * 4 + w] = words[w];
        report_info_[s] =
            (static_cast<uint64_t>(st.reportId) << 1) | (st.report ? 1 : 0);
        succ_xadj_[s + 1] = succ_xadj_[s] +
            static_cast<uint32_t>(st.out.size());
    }
    succ_.resize(succ_xadj_.back());
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        uint32_t base = succ_xadj_[s];
        const auto &out = nfa.state(s).out;
        for (size_t i = 0; i < out.size(); ++i)
            succ_[base + i] = out[i];
    }

    // Weighted automata additionally flatten the edge/start weights and
    // allocate the score frontier; unweighted ones skip all of it and
    // run the exact unscored kernels.
    scored_ = nfa.hasWeights();
    if (scored_) {
        succ_w_.assign(succ_.size(), 0);
        start_w_.assign(nfa.numStates(), 0);
        for (StateId s = 0; s < nfa.numStates(); ++s) {
            uint32_t base = succ_xadj_[s];
            const NfaState &st = nfa.state(s);
            for (size_t i = 0; i < st.out.size(); ++i)
                succ_w_[base + i] = nfa.edgeWeight(s, i);
            start_w_[s] = st.startWeight;
        }
        score_cur_.assign(nfa.numStates(), 0);
        score_nxt_.assign(nfa.numStates(), 0);
    }

    enabled_mask_ = BitVector(nfa.numStates());
    partition_epoch_.assign(mapped.numPartitions(), ~0ull);
    reset();
}

void
CacheAutomatonSim::reset()
{
    const Nfa &nfa = mapped_.nfa();
    for (StateId s : enabled_)
        enabled_mask_.reset(s);
    enabled_.clear();
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        if (nfa.state(s).start != StartType::None &&
            !enabled_mask_.test(s)) {
            enabled_mask_.set(s);
            enabled_.push_back(s);
            if (scored_)
                score_cur_[s] = start_w_[s];
        }
    }
    dense_active_ = false;
    density_seeded_ = false;
    last_kernel_ = -1;
    pending_reports_ = 0;
    stream_offset_ = 0;
    acc_ = SimResult{};
}

SimKernel
CacheAutomatonSim::effectiveKernel() const
{
    if (std::optional<SimKernel> env = simKernelEnvOverride())
        return *env;
    return opts_.kernel;
}

void
CacheAutomatonSim::ensureDenseTables()
{
    if (dense_ready_ || dense_unavailable_)
        return;
    const Nfa &nfa = mapped_.nfa();
    const uint32_t P = static_cast<uint32_t>(mapped_.numPartitions());
    if (P == 0 || nfa.numStates() == 0) {
        dense_unavailable_ = true;
        return;
    }
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        if (mapped_.location(s).slot >= kSlotsPerPartition) {
            // Defensive: a non-standard design geometry falls back to
            // the sparse kernel rather than corrupting masks.
            CA_WARN("dense kernel unavailable: state "
                    << s << " at slot " << mapped_.location(s).slot
                    << " exceeds " << kSlotsPerPartition);
            dense_unavailable_ = true;
            return;
        }
    }
    dense_partitions_ = P;

    dense_index_of_.assign(nfa.numStates(), 0);
    state_of_dense_.assign(static_cast<size_t>(P) * kSlotsPerPartition,
                           kInvalidState);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const SteLocation &loc = mapped_.location(s);
        uint32_t di = loc.partition * kSlotsPerPartition + loc.slot;
        dense_index_of_[s] = di;
        state_of_dense_[di] = s;
    }

    // Row reads (§2.2): for each input symbol, the 256-bit per-partition
    // match vector. Stored symbol-major so one symbol's step scans
    // contiguous memory across partitions.
    dense_rows_.assign(static_cast<size_t>(256) * P * kWordsPerPartition,
                       0);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        uint32_t di = dense_index_of_[s];
        uint32_t p = di / kSlotsPerPartition;
        uint32_t slot = di % kSlotsPerPartition;
        uint64_t slot_bit = uint64_t{1} << (slot & 63);
        size_t slot_word = slot >> 6;
        for (int w = 0; w < 4; ++w) {
            uint64_t label = labels_[s * 4 + w];
            while (label) {
                int b = std::countr_zero(label);
                uint32_t c = static_cast<uint32_t>(w * 64 + b);
                dense_rows_[(static_cast<size_t>(c) * P + p) *
                                kWordsPerPartition +
                            slot_word] |= slot_bit;
                label &= label - 1;
            }
        }
    }

    // L-switch crossbar rows (intra-partition successors) and G-switch
    // CSR (cross-partition successors, few per state by the 16/8 wire
    // budgets).
    dense_lswitch_.assign(state_of_dense_.size() * kWordsPerPartition, 0);
    dense_cross_xadj_.assign(state_of_dense_.size() + 1, 0);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        uint32_t cross = 0;
        for (uint32_t e = succ_xadj_[s]; e < succ_xadj_[s + 1]; ++e)
            if (partition_of_[succ_[e]] != partition_of_[s])
                ++cross;
        dense_cross_xadj_[dense_index_of_[s] + 1] = cross;
    }
    for (size_t i = 1; i < dense_cross_xadj_.size(); ++i)
        dense_cross_xadj_[i] += dense_cross_xadj_[i - 1];
    dense_cross_.resize(dense_cross_xadj_.back());
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        uint32_t di = dense_index_of_[s];
        uint32_t fill = dense_cross_xadj_[di];
        for (uint32_t e = succ_xadj_[s]; e < succ_xadj_[s + 1]; ++e) {
            StateId t = succ_[e];
            uint32_t ti = dense_index_of_[t];
            if (partition_of_[t] == partition_of_[s]) {
                uint32_t slot = ti % kSlotsPerPartition;
                dense_lswitch_[static_cast<size_t>(di) *
                                   kWordsPerPartition +
                               (slot >> 6)] |= uint64_t{1} << (slot & 63);
            } else {
                dense_cross_[fill++] = ti;
            }
        }
    }

    // Per-partition attribute masks: word-parallel G1/G4/report counting.
    dense_g1_.assign(static_cast<size_t>(P) * kWordsPerPartition, 0);
    dense_g4_.assign(static_cast<size_t>(P) * kWordsPerPartition, 0);
    dense_report_.assign(static_cast<size_t>(P) * kWordsPerPartition, 0);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        uint32_t di = dense_index_of_[s];
        size_t word = di >> 6;
        uint64_t bit = uint64_t{1} << (di & 63);
        if (cross_flags_[s] & 1)
            dense_g1_[word] |= bit;
        if (cross_flags_[s] & 2)
            dense_g4_[word] |= bit;
        if (report_info_[s] & 1)
            dense_report_[word] |= bit;
    }

    std::vector<uint64_t> allinput(
        static_cast<size_t>(P) * kWordsPerPartition, 0);
    for (StateId s : all_input_) {
        uint32_t di = dense_index_of_[s];
        allinput[di >> 6] |= uint64_t{1} << (di & 63);
    }
    dense_allinput_words_.clear();
    for (size_t w = 0; w < allinput.size(); ++w)
        if (allinput[w])
            dense_allinput_words_.emplace_back(
                static_cast<uint32_t>(w), allinput[w]);

    dense_cur_ =
        BitVector(static_cast<size_t>(P) * kSlotsPerPartition);
    dense_nxt_ =
        BitVector(static_cast<size_t>(P) * kSlotsPerPartition);
    if (scored_) {
        dense_score_cur_.assign(state_of_dense_.size(), 0);
        dense_score_nxt_.assign(state_of_dense_.size(), 0);
        dense_score_epoch_.assign(state_of_dense_.size(), 0);
        dense_epoch_counter_ = 0;
    }
    dense_ready_ = true;
}

void
CacheAutomatonSim::syncDenseFromSparse()
{
    dense_cur_.clearAll();
    for (StateId s : enabled_) {
        uint32_t di = dense_index_of_[s];
        dense_cur_.setUnchecked(di);
        if (scored_)
            dense_score_cur_[di] = score_cur_[s];
    }
    dense_active_ = true;
}

void
CacheAutomatonSim::syncSparseFromDense()
{
    for (StateId s : enabled_)
        enabled_mask_.resetUnchecked(s);
    enabled_.clear();
    dense_cur_.forEachSet([&](size_t di) {
        StateId s = state_of_dense_[di];
        enabled_mask_.setUnchecked(s);
        enabled_.push_back(s);
        if (scored_)
            score_cur_[s] = dense_score_cur_[di];
    });
    dense_active_ = false;
}

KernelDecisionStats
CacheAutomatonSim::kernelStats() const
{
    KernelDecisionStats ks;
    ks.sparseBlocks = ks_sparse_blocks_.load(std::memory_order_relaxed);
    ks.denseBlocks = ks_dense_blocks_.load(std::memory_order_relaxed);
    ks.sparseSymbols =
        ks_sparse_symbols_.load(std::memory_order_relaxed);
    ks.denseSymbols = ks_dense_symbols_.load(std::memory_order_relaxed);
    ks.kernelFlips = ks_flips_.load(std::memory_order_relaxed);
    ks.densityEwma = ks_density_.load(std::memory_order_relaxed);
    ks.lastKernel = ks_last_.load(std::memory_order_relaxed);
    return ks;
}

bool
CacheAutomatonSim::chooseDense()
{
    SimKernel kernel = effectiveKernel();
    if (kernel == SimKernel::Sparse)
        return false;
    ensureDenseTables();
    if (dense_unavailable_)
        return false;
    if (kernel == SimKernel::Dense)
        return true;
    // Auto: seed the EWMA from the current frontier density so a sim
    // restored into a hot checkpoint starts on the right kernel.
    size_t n = mapped_.nfa().numStates();
    if (!density_seeded_) {
        size_t frontier =
            dense_active_ ? dense_cur_.count() : enabled_.size();
        density_ewma_ =
            static_cast<double>(frontier) / static_cast<double>(n);
        density_seeded_ = true;
    }
    return density_ewma_ > opts_.autoDensityThreshold;
}

void
CacheAutomatonSim::emitCycleReportsScored()
{
    if (cycle_report_scored_.empty())
        return;
    // Same canonical ascending-state order as the unscored path; the
    // score rides along as the report payload.
    std::sort(cycle_report_scored_.begin(), cycle_report_scored_.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    if (opts_.collectReports) {
        for (const auto &[s, score] : cycle_report_scored_)
            acc_.reports.push_back(Report{
                stream_offset_,
                static_cast<uint32_t>(report_info_[s] >> 1), s, score});
    }
    pending_reports_ += cycle_report_scored_.size();
    const uint64_t depth =
        static_cast<uint64_t>(std::max(opts_.outputBufferDepth, 1));
    while (pending_reports_ >= depth) {
        ++acc_.outputBufferInterrupts;
        pending_reports_ -= depth;
    }
    cycle_report_scored_.clear();
}

void
CacheAutomatonSim::emitCycleReports()
{
    if (cycle_report_scratch_.empty())
        return;
    // Canonical within-cycle order: ascending state id (shared with the
    // CPU oracle and both kernels — bit-identical report streams).
    std::sort(cycle_report_scratch_.begin(), cycle_report_scratch_.end());
    if (opts_.collectReports) {
        for (StateId s : cycle_report_scratch_)
            acc_.reports.push_back(Report{
                stream_offset_,
                static_cast<uint32_t>(report_info_[s] >> 1), s});
    }
    // §2.8 output buffer: an interrupt drains outputBufferDepth entries;
    // overshoot past the threshold (several states reporting in one
    // cycle) carries into the next buffer instead of being discarded,
    // so interrupt counts stay exact.
    pending_reports_ += cycle_report_scratch_.size();
    const uint64_t depth = static_cast<uint64_t>(
        std::max(opts_.outputBufferDepth, 1));
    while (pending_reports_ >= depth) {
        ++acc_.outputBufferInterrupts;
        pending_reports_ -= depth;
    }
    cycle_report_scratch_.clear();
}

void
CacheAutomatonSim::feed(const uint8_t *data, size_t size)
{
#if CA_TELEMETRY
    const bool telemetry_on = telemetry::enabled();
    struct
    {
        uint64_t symbols, activeStates, activePartitionCycles, g1, g4,
            reports, fifoRefills, obInterrupts, sparseSyms, denseSyms,
            kernelSwitches;
    } before = {};
    if (telemetry_on) {
        before = {acc_.symbols, acc_.totalActiveStates,
                  acc_.totalActivePartitionCycles, acc_.totalG1Crossings,
                  acc_.totalG4Crossings, acc_.reports.size(),
                  acc_.fifoRefills, acc_.outputBufferInterrupts,
                  acc_.sparseKernelSymbols, acc_.denseKernelSymbols,
                  acc_.kernelSwitches};
    }
#endif
    const bool auto_kernel = effectiveKernel() == SimKernel::Auto;
    const size_t n_states = mapped_.nfa().numStates();
    size_t pos = 0;
    while (pos < size) {
        bool use_dense = chooseDense();
        size_t block = size - pos;
        if (auto_kernel && opts_.autoBlockSymbols > 0)
            block = std::min(block,
                             static_cast<size_t>(opts_.autoBlockSymbols));

        int kernel_id = use_dense ? 1 : 0;
        if (last_kernel_ >= 0 && last_kernel_ != kernel_id)
            ++acc_.kernelSwitches;
        last_kernel_ = kernel_id;

        // Engine-lifetime decision counters (kernelStats()). ks_last_
        // is tracked separately from last_kernel_, which restore()
        // clears: a flip only counts when the *engine* really changed
        // kernels between consecutive blocks.
        (use_dense ? ks_dense_blocks_ : ks_sparse_blocks_)
            .fetch_add(1, std::memory_order_relaxed);
        int ks_prev = ks_last_.load(std::memory_order_relaxed);
        if (ks_prev >= 0 && ks_prev != kernel_id)
            ks_flips_.fetch_add(1, std::memory_order_relaxed);
        ks_last_.store(kernel_id, std::memory_order_relaxed);

        if (use_dense && !dense_active_)
            syncDenseFromSparse();
        else if (!use_dense && dense_active_)
            syncSparseFromDense();

        if (use_dense) {
            feedDense(data + pos, block);
            acc_.denseKernelSymbols += block;
            ks_dense_symbols_.fetch_add(block,
                                        std::memory_order_relaxed);
        } else {
            feedSparse(data + pos, block);
            acc_.sparseKernelSymbols += block;
            ks_sparse_symbols_.fetch_add(block,
                                         std::memory_order_relaxed);
        }
        pos += block;

        if (auto_kernel && n_states > 0 && block > 0) {
            // Sample the *enabled frontier*, not the matched count: the
            // sparse kernel's per-symbol cost is one label test per
            // enabled state (always-enabled all-input starts included),
            // so frontier size is the quantity the crossover tracks.
            size_t frontier =
                dense_active_ ? dense_cur_.count() : enabled_.size();
            double sample = static_cast<double>(frontier) /
                static_cast<double>(n_states);
            density_ewma_ = opts_.autoEwmaAlpha * sample +
                (1.0 - opts_.autoEwmaAlpha) * density_ewma_;
            ks_density_.store(density_ewma_,
                              std::memory_order_relaxed);
        }
    }
#if CA_TELEMETRY
    if (telemetry_on) {
        SimCounters &c = SimCounters::get();
        c.symbols.add(acc_.symbols - before.symbols);
        c.activeStates.add(acc_.totalActiveStates - before.activeStates);
        c.activePartitionCycles.add(acc_.totalActivePartitionCycles -
                                    before.activePartitionCycles);
        c.g1Crossings.add(acc_.totalG1Crossings - before.g1);
        c.g4Crossings.add(acc_.totalG4Crossings - before.g4);
        c.reports.add(acc_.reports.size() - before.reports);
        c.fifoRefills.add(acc_.fifoRefills - before.fifoRefills);
        c.outputBufferInterrupts.add(acc_.outputBufferInterrupts -
                                     before.obInterrupts);
        c.kernelSparseSymbols.add(acc_.sparseKernelSymbols -
                                  before.sparseSyms);
        c.kernelDenseSymbols.add(acc_.denseKernelSymbols -
                                 before.denseSyms);
        c.kernelSwitches.add(acc_.kernelSwitches -
                             before.kernelSwitches);
        c.feedSymbols.observe(size);
    }
#endif
}

void
CacheAutomatonSim::feedSparse(const uint8_t *data, size_t size)
{
    if (scored_)
        feedSparseImpl<true>(data, size);
    else
        feedSparseImpl<false>(data, size);
}

template <bool Scored>
void
CacheAutomatonSim::feedSparseImpl(const uint8_t *data, size_t size)
{
    for (size_t i = 0; i < size; ++i) {
        uint8_t c = data[i];
        const uint64_t label_bit = uint64_t{1} << (c & 63);
        const size_t label_word = c >> 6;

        // FIFO refill accounting: one cache-block read per refill batch
        // (aligned to the absolute stream offset).
        if (stream_offset_ % static_cast<uint64_t>(opts_.fifoRefillSymbols)
            == 0)
            ++acc_.fifoRefills;

        acc_.totalEnabledStates += enabled_.size();

        // A partition is active (performs an array read + L-switch
        // access) when its active-state vector has any bit set (§5.3).
        uint64_t epoch = ++epoch_counter_;
        uint32_t active_partitions = 0;
        for (StateId s : enabled_) {
            uint32_t p = partition_of_[s];
            if (partition_epoch_[p] != epoch) {
                partition_epoch_[p] = epoch;
                ++active_partitions;
            }
        }
        acc_.totalActivePartitionCycles += active_partitions;

        // State-match phase.
        active_scratch_.clear();
        uint32_t g1 = 0;
        uint32_t g4 = 0;
        for (StateId s : enabled_) {
            if (!(labels_[s * 4 + label_word] & label_bit))
                continue;
            active_scratch_.push_back(s);
            uint8_t flags = cross_flags_[s];
            if (flags & 1)
                ++g1;
            if (flags & 2)
                ++g4;
            if (report_info_[s] & 1) {
                if constexpr (Scored)
                    cycle_report_scored_.emplace_back(s, score_cur_[s]);
                else
                    cycle_report_scratch_.push_back(s);
            }
        }
        acc_.totalActiveStates += active_scratch_.size();
        acc_.totalG1Crossings += g1;
        acc_.totalG4Crossings += g4;

        uint32_t fired;
        if constexpr (Scored) {
            fired = static_cast<uint32_t>(cycle_report_scored_.size());
            emitCycleReportsScored();
        } else {
            fired = static_cast<uint32_t>(cycle_report_scratch_.size());
            emitCycleReports();
        }

        if (opts_.recordTrace) {
            acc_.trace.push_back(CycleTrace{
                active_partitions,
                static_cast<uint32_t>(active_scratch_.size()), g1, g4,
                fired});
        }

        // State-transition phase. Clear only the bits set last cycle (the
        // mask is as wide as the NFA; a full clear would dominate).
        for (StateId s : enabled_)
            enabled_mask_.resetUnchecked(s);
        enabled_.clear();
        for (StateId s : active_scratch_) {
            uint32_t end = succ_xadj_[s + 1];
            for (uint32_t e = succ_xadj_[s]; e < end; ++e) {
                StateId t = succ_[e];
                if constexpr (Scored) {
                    // ⊗ along the edge, ⊕ across alternatives into t.
                    const Score cand = score_cur_[s] +
                        static_cast<Score>(succ_w_[e]);
                    if (!enabled_mask_.testUnchecked(t)) {
                        enabled_mask_.setUnchecked(t);
                        enabled_.push_back(t);
                        score_nxt_[t] = cand;
                    } else {
                        score_nxt_[t] = scoreCombine(
                            opts_.semiring, score_nxt_[t], cand);
                    }
                } else {
                    if (!enabled_mask_.testUnchecked(t)) {
                        enabled_mask_.setUnchecked(t);
                        enabled_.push_back(t);
                    }
                }
            }
        }
        for (StateId s : all_input_) {
            if constexpr (Scored) {
                // An always-on start competes with any incoming path at
                // its start weight (a fresh local alignment).
                const Score w = static_cast<Score>(start_w_[s]);
                if (!enabled_mask_.testUnchecked(s)) {
                    enabled_mask_.setUnchecked(s);
                    enabled_.push_back(s);
                    score_nxt_[s] = w;
                } else {
                    score_nxt_[s] =
                        scoreCombine(opts_.semiring, score_nxt_[s], w);
                }
            } else {
                if (!enabled_mask_.testUnchecked(s)) {
                    enabled_mask_.setUnchecked(s);
                    enabled_.push_back(s);
                }
            }
        }
        if constexpr (Scored)
            score_cur_.swap(score_nxt_);
        ++acc_.symbols;
        ++stream_offset_;
    }
}

void
CacheAutomatonSim::feedDense(const uint8_t *data, size_t size)
{
    if (scored_)
        feedDenseImpl<true>(data, size);
    else
        feedDenseImpl<false>(data, size);
}

template <bool Scored>
void
CacheAutomatonSim::feedDenseImpl(const uint8_t *data, size_t size)
{
    const uint32_t P = dense_partitions_;
    const size_t words = static_cast<size_t>(P) * kWordsPerPartition;
    uint64_t *cur = dense_cur_.raw().data();
    uint64_t *nxt = dense_nxt_.raw().data();
    const uint64_t *g1_mask = dense_g1_.data();
    const uint64_t *g4_mask = dense_g4_.data();
    const uint64_t *rep_mask = dense_report_.data();
    const uint64_t *lswitch = dense_lswitch_.data();
    // Scored runs keep the word-parallel row read for matching but
    // propagate scores scalar per matched state via the successor CSR;
    // an epoch array discriminates first-write from ⊕-combine without
    // clearing the score vector each symbol.
    Score *scur = Scored ? dense_score_cur_.data() : nullptr;
    Score *snxt = Scored ? dense_score_nxt_.data() : nullptr;

    for (size_t i = 0; i < size; ++i) {
        uint8_t c = data[i];

        if (stream_offset_ % static_cast<uint64_t>(opts_.fifoRefillSymbols)
            == 0)
            ++acc_.fifoRefills;

        std::fill(nxt, nxt + words, 0);
        [[maybe_unused]] uint64_t score_epoch = 0;
        if constexpr (Scored)
            score_epoch = ++dense_epoch_counter_;

        const uint64_t *rows =
            &dense_rows_[static_cast<size_t>(c) * words];
        uint32_t active_partitions = 0;
        uint64_t active_states = 0;
        uint64_t g1 = 0;
        uint64_t g4 = 0;
        for (uint32_t p = 0; p < P; ++p) {
            const size_t base = static_cast<size_t>(p) *
                kWordsPerPartition;
            const uint64_t e0 = cur[base + 0];
            const uint64_t e1 = cur[base + 1];
            const uint64_t e2 = cur[base + 2];
            const uint64_t e3 = cur[base + 3];
            if (!(e0 | e1 | e2 | e3))
                continue;
            ++active_partitions;
            acc_.totalEnabledStates += static_cast<uint64_t>(
                std::popcount(e0) + std::popcount(e1) +
                std::popcount(e2) + std::popcount(e3));
            // The §2.2 row read: the SRAM row *is* the match vector.
            uint64_t m[4] = {e0 & rows[base + 0], e1 & rows[base + 1],
                             e2 & rows[base + 2], e3 & rows[base + 3]};
            if (!(m[0] | m[1] | m[2] | m[3]))
                continue;
            for (int w = 0; w < 4; ++w) {
                uint64_t mw = m[w];
                if (!mw)
                    continue;
                active_states +=
                    static_cast<uint64_t>(std::popcount(mw));
                g1 += static_cast<uint64_t>(
                    std::popcount(mw & g1_mask[base + w]));
                g4 += static_cast<uint64_t>(
                    std::popcount(mw & g4_mask[base + w]));
                uint64_t rw = mw & rep_mask[base + w];
                while (rw) {
                    int b = std::countr_zero(rw);
                    uint32_t di = static_cast<uint32_t>(
                        (base + static_cast<size_t>(w)) * 64 +
                        static_cast<size_t>(b));
                    if constexpr (Scored)
                        cycle_report_scored_.emplace_back(
                            state_of_dense_[di], scur[di]);
                    else
                        cycle_report_scratch_.push_back(
                            state_of_dense_[di]);
                    rw &= rw - 1;
                }
                // Transition: matched states drive their L-switch rows
                // (4-word OR) and their few G-switch wires.
                while (mw) {
                    int b = std::countr_zero(mw);
                    uint32_t di = static_cast<uint32_t>(
                        (base + static_cast<size_t>(w)) * 64 +
                        static_cast<size_t>(b));
                    const uint64_t *row =
                        lswitch + static_cast<size_t>(di) *
                            kWordsPerPartition;
                    nxt[base + 0] |= row[0];
                    nxt[base + 1] |= row[1];
                    nxt[base + 2] |= row[2];
                    nxt[base + 3] |= row[3];
                    for (uint32_t e = dense_cross_xadj_[di];
                         e < dense_cross_xadj_[di + 1]; ++e) {
                        uint32_t ti = dense_cross_[e];
                        nxt[ti >> 6] |= uint64_t{1} << (ti & 63);
                    }
                    if constexpr (Scored) {
                        const StateId s = state_of_dense_[di];
                        const Score from = scur[di];
                        const uint32_t end = succ_xadj_[s + 1];
                        for (uint32_t e = succ_xadj_[s]; e < end; ++e) {
                            const uint32_t ti =
                                dense_index_of_[succ_[e]];
                            const Score cand = from +
                                static_cast<Score>(succ_w_[e]);
                            if (dense_score_epoch_[ti] != score_epoch) {
                                dense_score_epoch_[ti] = score_epoch;
                                snxt[ti] = cand;
                            } else {
                                snxt[ti] = scoreCombine(
                                    opts_.semiring, snxt[ti], cand);
                            }
                        }
                    }
                    mw &= mw - 1;
                }
            }
        }
        acc_.totalActivePartitionCycles += active_partitions;
        acc_.totalActiveStates += active_states;
        acc_.totalG1Crossings += g1;
        acc_.totalG4Crossings += g4;

        uint32_t fired;
        if constexpr (Scored) {
            fired = static_cast<uint32_t>(cycle_report_scored_.size());
            emitCycleReportsScored();
        } else {
            fired = static_cast<uint32_t>(cycle_report_scratch_.size());
            emitCycleReports();
        }

        if (opts_.recordTrace) {
            acc_.trace.push_back(CycleTrace{
                active_partitions, static_cast<uint32_t>(active_states),
                static_cast<uint32_t>(g1), static_cast<uint32_t>(g4),
                fired});
        }

        for (const auto &[w, mask] : dense_allinput_words_)
            nxt[w] |= mask;
        if constexpr (Scored) {
            for (StateId s : all_input_) {
                const uint32_t ti = dense_index_of_[s];
                const Score w = static_cast<Score>(start_w_[s]);
                if (dense_score_epoch_[ti] != score_epoch) {
                    dense_score_epoch_[ti] = score_epoch;
                    snxt[ti] = w;
                } else {
                    snxt[ti] =
                        scoreCombine(opts_.semiring, snxt[ti], w);
                }
            }
        }

        std::swap(cur, nxt);
        if constexpr (Scored)
            std::swap(scur, snxt);
        ++acc_.symbols;
        ++stream_offset_;
    }
    // An odd symbol count leaves the live frontier in dense_nxt_'s
    // storage; swap the vectors so dense_cur_ owns it again.
    if (cur != dense_cur_.raw().data())
        std::swap(dense_cur_, dense_nxt_);
    if constexpr (Scored) {
        if (scur != dense_score_cur_.data())
            dense_score_cur_.swap(dense_score_nxt_);
    }
}

SimResult
CacheAutomatonSim::result() const
{
    SimResult out = acc_;
    // 3-stage pipeline: the last symbol completes 2 cycles after issue.
    out.cycles = out.symbols == 0 ? 0 : out.symbols + 2;
    return out;
}

SimResult
CacheAutomatonSim::run(const uint8_t *data, size_t size)
{
    CA_TRACE_SCOPE("ca.sim.run");
    reset();
    feed(data, size);
    return result();
}

SimResult
CacheAutomatonSim::run(const uint8_t *data, size_t size,
                       const SimOptions &opts)
{
    // One-off options: restore the bound ones when the run ends, so a
    // later feed()/run() still sees what the sim was constructed with.
    const SimOptions saved = opts_;
    opts_ = opts;
    SimResult out;
    try {
        out = run(data, size);
    } catch (...) {
        opts_ = saved;
        throw;
    }
    opts_ = saved;
    return out;
}

std::vector<Report>
CacheAutomatonSim::takeReports()
{
    std::vector<Report> out = std::move(acc_.reports);
    acc_.reports.clear();
    return out;
}

SimCheckpoint
CacheAutomatonSim::checkpoint() const
{
    SimCheckpoint ckpt;
    ckpt.symbolOffset = stream_offset_;
    if (!scored_) {
        if (dense_active_) {
            dense_cur_.forEachSet([&](size_t di) {
                ckpt.enabledStates.push_back(state_of_dense_[di]);
            });
        } else {
            ckpt.enabledStates = enabled_;
        }
        std::sort(ckpt.enabledStates.begin(), ckpt.enabledStates.end());
        return ckpt;
    }
    // Weighted automata checkpoint the per-state scores alongside the
    // frontier, kept parallel through the canonical sort.
    std::vector<std::pair<StateId, Score>> pairs;
    if (dense_active_) {
        dense_cur_.forEachSet([&](size_t di) {
            pairs.emplace_back(state_of_dense_[di],
                               dense_score_cur_[di]);
        });
    } else {
        for (StateId s : enabled_)
            pairs.emplace_back(s, score_cur_[s]);
    }
    std::sort(pairs.begin(), pairs.end());
    ckpt.enabledStates.reserve(pairs.size());
    ckpt.enabledScores.reserve(pairs.size());
    for (const auto &[s, score] : pairs) {
        ckpt.enabledStates.push_back(s);
        ckpt.enabledScores.push_back(score);
    }
    return ckpt;
}

void
CacheAutomatonSim::restore(const SimCheckpoint &ckpt)
{
    const Nfa &nfa = mapped_.nfa();
    CA_FATAL_IF(!ckpt.enabledScores.empty() &&
                    ckpt.enabledScores.size() !=
                        ckpt.enabledStates.size(),
                "checkpoint has " << ckpt.enabledStates.size()
                                  << " states but "
                                  << ckpt.enabledScores.size()
                                  << " scores");
    for (StateId s : enabled_)
        enabled_mask_.reset(s);
    enabled_.clear();
    for (size_t i = 0; i < ckpt.enabledStates.size(); ++i) {
        StateId s = ckpt.enabledStates[i];
        CA_FATAL_IF(s >= nfa.numStates(),
                    "checkpoint references state " << s
                                                   << " outside automaton");
        if (!enabled_mask_.test(s)) {
            enabled_mask_.set(s);
            enabled_.push_back(s);
            if (scored_)
                score_cur_[s] = ckpt.enabledScores.empty()
                    ? 0
                    : ckpt.enabledScores[i];
        }
    }
    dense_active_ = false;
    density_seeded_ = false;
    last_kernel_ = -1;
    pending_reports_ = 0;
    acc_ = SimResult{};
    stream_offset_ = ckpt.symbolOffset;
}

} // namespace ca
