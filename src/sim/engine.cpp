#include "sim/engine.h"

#include <algorithm>

#include "core/error.h"
#include "telemetry/telemetry.h"

namespace ca {

#if CA_TELEMETRY
namespace {

/**
 * Registry handles for the sim counters, resolved once per process. The
 * hot loop never touches these: feed() flushes chunk-level deltas on
 * exit, so the per-symbol path is identical with telemetry on or off and
 * the disabled path costs one branch per feed() call.
 */
struct SimCounters
{
    telemetry::Counter &symbols;
    telemetry::Counter &activeStates;
    telemetry::Counter &activePartitionCycles;
    telemetry::Counter &g1Crossings;
    telemetry::Counter &g4Crossings;
    telemetry::Counter &reports;
    telemetry::Counter &fifoRefills;
    telemetry::Counter &outputBufferInterrupts;
    telemetry::Histogram &feedSymbols;

    static SimCounters &
    get()
    {
        auto &reg = telemetry::MetricsRegistry::global();
        static SimCounters c{
            reg.counter("ca.sim.symbols"),
            reg.counter("ca.sim.active_states"),
            reg.counter("ca.sim.active_partition_cycles"),
            reg.counter("ca.sim.g1_crossings"),
            reg.counter("ca.sim.g4_crossings"),
            reg.counter("ca.sim.reports"),
            reg.counter("ca.sim.fifo_refills"),
            reg.counter("ca.sim.output_buffer_interrupts"),
            reg.histogram("ca.sim.feed_symbols"),
        };
        return c;
    }
};

} // namespace
#endif // CA_TELEMETRY

ActivityStats
SimResult::activity() const
{
    ActivityStats a;
    if (symbols == 0)
        return a;
    double n = static_cast<double>(symbols);
    a.avgActivePartitions =
        static_cast<double>(totalActivePartitionCycles) / n;
    a.avgActiveStates = static_cast<double>(totalActiveStates) / n;
    a.avgG1Crossings = static_cast<double>(totalG1Crossings) / n;
    a.avgG4Crossings = static_cast<double>(totalG4Crossings) / n;
    return a;
}

double
SimResult::avgActiveStates() const
{
    return symbols == 0
        ? 0.0
        : static_cast<double>(totalActiveStates) /
            static_cast<double>(symbols);
}

double
SimResult::seconds(double freq_hz) const
{
    return static_cast<double>(cycles) / freq_hz;
}

namespace {

/** Null-checks before the delegating ctor dereferences. */
const MappedAutomaton &
requireAutomaton(const std::shared_ptr<const MappedAutomaton> &mapped)
{
    CA_FATAL_IF(!mapped, "CacheAutomatonSim: null mapped automaton");
    return *mapped;
}

} // namespace

CacheAutomatonSim::CacheAutomatonSim(
    std::shared_ptr<const MappedAutomaton> mapped, const SimOptions &opts)
    : CacheAutomatonSim(requireAutomaton(mapped), opts)
{
    owned_ = std::move(mapped);
}

CacheAutomatonSim::CacheAutomatonSim(const MappedAutomaton &mapped,
                                     const SimOptions &opts)
    : mapped_(mapped), opts_(opts)
{
    const Nfa &nfa = mapped.nfa();
    partition_of_.resize(nfa.numStates());
    cross_flags_.assign(nfa.numStates(), 0);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        partition_of_[s] = mapped.location(s).partition;
        if (nfa.state(s).start == StartType::AllInput)
            all_input_.push_back(s);
    }
    for (const CrossEdge &e : mapped.crossEdges())
        cross_flags_[e.from] |= e.viaG4 ? 2 : 1;

    // Flatten labels, successors, and report attributes so the per-symbol
    // loop touches dense arrays instead of NfaState objects.
    labels_.resize(nfa.numStates() * 4);
    report_info_.resize(nfa.numStates());
    succ_xadj_.assign(nfa.numStates() + 1, 0);
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        const NfaState &st = nfa.state(s);
        const auto &words = st.label.raw();
        for (int w = 0; w < 4; ++w)
            labels_[s * 4 + w] = words[w];
        report_info_[s] =
            (static_cast<uint64_t>(st.reportId) << 1) | (st.report ? 1 : 0);
        succ_xadj_[s + 1] = succ_xadj_[s] +
            static_cast<uint32_t>(st.out.size());
    }
    succ_.resize(succ_xadj_.back());
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        uint32_t base = succ_xadj_[s];
        const auto &out = nfa.state(s).out;
        for (size_t i = 0; i < out.size(); ++i)
            succ_[base + i] = out[i];
    }

    enabled_mask_ = BitVector(nfa.numStates());
    partition_epoch_.assign(mapped.numPartitions(), ~0ull);
    reset();
}

void
CacheAutomatonSim::reset()
{
    const Nfa &nfa = mapped_.nfa();
    for (StateId s : enabled_)
        enabled_mask_.reset(s);
    enabled_.clear();
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        if (nfa.state(s).start != StartType::None &&
            !enabled_mask_.test(s)) {
            enabled_mask_.set(s);
            enabled_.push_back(s);
        }
    }
    pending_reports_ = 0;
    stream_offset_ = 0;
    acc_ = SimResult{};
}

void
CacheAutomatonSim::feed(const uint8_t *data, size_t size)
{
#if CA_TELEMETRY
    const bool telemetry_on = telemetry::enabled();
    struct
    {
        uint64_t symbols, activeStates, activePartitionCycles, g1, g4,
            reports, fifoRefills, obInterrupts;
    } before = {};
    if (telemetry_on) {
        before = {acc_.symbols, acc_.totalActiveStates,
                  acc_.totalActivePartitionCycles, acc_.totalG1Crossings,
                  acc_.totalG4Crossings, acc_.reports.size(),
                  acc_.fifoRefills, acc_.outputBufferInterrupts};
    }
#endif
    for (size_t i = 0; i < size; ++i) {
        uint8_t c = data[i];
        const uint64_t label_bit = uint64_t{1} << (c & 63);
        const size_t label_word = c >> 6;

        // FIFO refill accounting: one cache-block read per refill batch
        // (aligned to the absolute stream offset).
        if (stream_offset_ % static_cast<uint64_t>(opts_.fifoRefillSymbols)
            == 0)
            ++acc_.fifoRefills;

        // A partition is active (performs an array read + L-switch
        // access) when its active-state vector has any bit set (§5.3).
        uint64_t epoch = ++epoch_counter_;
        uint32_t active_partitions = 0;
        for (StateId s : enabled_) {
            uint32_t p = partition_of_[s];
            if (partition_epoch_[p] != epoch) {
                partition_epoch_[p] = epoch;
                ++active_partitions;
            }
        }
        acc_.totalActivePartitionCycles += active_partitions;

        // State-match phase.
        active_scratch_.clear();
        uint32_t g1 = 0;
        uint32_t g4 = 0;
        uint32_t fired = 0;
        for (StateId s : enabled_) {
            if (!(labels_[s * 4 + label_word] & label_bit))
                continue;
            active_scratch_.push_back(s);
            uint8_t flags = cross_flags_[s];
            if (flags & 1)
                ++g1;
            if (flags & 2)
                ++g4;
            uint64_t rinfo = report_info_[s];
            if (rinfo & 1) {
                ++fired;
                if (opts_.collectReports)
                    acc_.reports.push_back(Report{
                        stream_offset_,
                        static_cast<uint32_t>(rinfo >> 1), s});
                ++pending_reports_;
                if (pending_reports_ >=
                    static_cast<uint64_t>(opts_.outputBufferDepth)) {
                    ++acc_.outputBufferInterrupts;
                    pending_reports_ = 0;
                }
            }
        }
        acc_.totalActiveStates += active_scratch_.size();
        acc_.totalG1Crossings += g1;
        acc_.totalG4Crossings += g4;

        if (opts_.recordTrace) {
            acc_.trace.push_back(CycleTrace{
                active_partitions,
                static_cast<uint32_t>(active_scratch_.size()), g1, g4,
                fired});
        }

        // State-transition phase. Clear only the bits set last cycle (the
        // mask is as wide as the NFA; a full clear would dominate).
        for (StateId s : enabled_)
            enabled_mask_.resetUnchecked(s);
        enabled_.clear();
        for (StateId s : active_scratch_) {
            uint32_t end = succ_xadj_[s + 1];
            for (uint32_t e = succ_xadj_[s]; e < end; ++e) {
                StateId t = succ_[e];
                if (!enabled_mask_.testUnchecked(t)) {
                    enabled_mask_.setUnchecked(t);
                    enabled_.push_back(t);
                }
            }
        }
        for (StateId s : all_input_) {
            if (!enabled_mask_.testUnchecked(s)) {
                enabled_mask_.setUnchecked(s);
                enabled_.push_back(s);
            }
        }
        ++acc_.symbols;
        ++stream_offset_;
    }
#if CA_TELEMETRY
    if (telemetry_on) {
        SimCounters &c = SimCounters::get();
        c.symbols.add(acc_.symbols - before.symbols);
        c.activeStates.add(acc_.totalActiveStates - before.activeStates);
        c.activePartitionCycles.add(acc_.totalActivePartitionCycles -
                                    before.activePartitionCycles);
        c.g1Crossings.add(acc_.totalG1Crossings - before.g1);
        c.g4Crossings.add(acc_.totalG4Crossings - before.g4);
        c.reports.add(acc_.reports.size() - before.reports);
        c.fifoRefills.add(acc_.fifoRefills - before.fifoRefills);
        c.outputBufferInterrupts.add(acc_.outputBufferInterrupts -
                                     before.obInterrupts);
        c.feedSymbols.observe(size);
    }
#endif
}

SimResult
CacheAutomatonSim::result() const
{
    SimResult out = acc_;
    // 3-stage pipeline: the last symbol completes 2 cycles after issue.
    out.cycles = out.symbols == 0 ? 0 : out.symbols + 2;
    return out;
}

SimResult
CacheAutomatonSim::run(const uint8_t *data, size_t size)
{
    CA_TRACE_SCOPE("ca.sim.run");
    reset();
    feed(data, size);
    return result();
}

SimResult
CacheAutomatonSim::run(const uint8_t *data, size_t size,
                       const SimOptions &opts)
{
    opts_ = opts;
    return run(data, size);
}

std::vector<Report>
CacheAutomatonSim::takeReports()
{
    std::vector<Report> out = std::move(acc_.reports);
    acc_.reports.clear();
    return out;
}

SimCheckpoint
CacheAutomatonSim::checkpoint() const
{
    SimCheckpoint ckpt;
    ckpt.symbolOffset = stream_offset_;
    ckpt.enabledStates = enabled_;
    std::sort(ckpt.enabledStates.begin(), ckpt.enabledStates.end());
    return ckpt;
}

void
CacheAutomatonSim::restore(const SimCheckpoint &ckpt)
{
    const Nfa &nfa = mapped_.nfa();
    for (StateId s : enabled_)
        enabled_mask_.reset(s);
    enabled_.clear();
    for (StateId s : ckpt.enabledStates) {
        CA_FATAL_IF(s >= nfa.numStates(),
                    "checkpoint references state " << s
                                                   << " outside automaton");
        if (!enabled_mask_.test(s)) {
            enabled_mask_.set(s);
            enabled_.push_back(s);
        }
    }
    pending_reports_ = 0;
    acc_ = SimResult{};
    stream_offset_ = ckpt.symbolOffset;
}

} // namespace ca
