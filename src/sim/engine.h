/**
 * @file
 * Cycle-level Cache Automaton simulator.
 *
 * Executes a *mapped* automaton the way the hardware does (§2.2-2.5):
 * every cycle, partitions with a non-zero active-state vector perform an
 * array read (state match), matched states traverse the L-switch, and
 * cross-partition transitions traverse the G-switches. The simulator's
 * per-cycle activity statistics (active partitions, active states, G1/G4
 * crossings) are exactly what the energy model consumes — the same
 * methodology the paper uses (VASim activity feeding derived constants).
 *
 * The engine is incremental: feed() consumes stream chunks, and the §2.9
 * suspend/resume model is supported by checkpoint()/restore() (the
 * hardware records the active-state vector and input symbol counter).
 *
 * Functional behaviour (the report stream) is bit-identical to the CPU
 * oracle engine; the test suite enforces this on randomized automata.
 */
#ifndef CA_SIM_ENGINE_H
#define CA_SIM_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/energy.h"
#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "core/bitvector.h"

namespace ca {

/** Simulation controls. */
struct SimOptions
{
    bool collectReports = true;
    /** Record a per-cycle activity trace (costly; for tests/ablations). */
    bool recordTrace = false;
    /** Input FIFO depth (§2.8). */
    int fifoDepth = 128;
    /** Symbols refilled per cache-block fetch into the FIFO. */
    int fifoRefillSymbols = 64;
    /** Output buffer entries before an interrupt fires (§2.8). */
    int outputBufferDepth = 64;
};

/** One cycle of recorded activity (when SimOptions::recordTrace). */
struct CycleTrace
{
    uint32_t activePartitions = 0;
    uint32_t activeStates = 0;
    uint32_t g1Crossings = 0;
    uint32_t g4Crossings = 0;
    uint32_t reportsFired = 0;
};

/** Results of a simulated stream (cumulative since reset). */
struct SimResult
{
    uint64_t symbols = 0;
    /** Pipeline cycles = symbols + fill (3-stage pipeline, §2.5). */
    uint64_t cycles = 0;

    std::vector<Report> reports;

    // Totals over all symbols.
    uint64_t totalActivePartitionCycles = 0;
    uint64_t totalActiveStates = 0;
    uint64_t totalG1Crossings = 0;
    uint64_t totalG4Crossings = 0;

    // System-integration counters (§2.8).
    uint64_t fifoRefills = 0;
    uint64_t outputBufferInterrupts = 0;

    std::vector<CycleTrace> trace;

    /** Mean activity factors for the energy model. */
    ActivityStats activity() const;

    /** Average active states per symbol (Table 1's rightmost columns). */
    double avgActiveStates() const;

    /** Wall-clock seconds at @p freq_hz (1 symbol per cycle). */
    double seconds(double freq_hz) const;
};

/**
 * Suspend/resume snapshot (§2.9): the active-state vector (here: the
 * enabled frontier) and the input symbol counter. Restoring into a fresh
 * simulator bound to the same mapped automaton continues the stream
 * exactly where it left off.
 */
struct SimCheckpoint
{
    uint64_t symbolOffset = 0;
    std::vector<StateId> enabledStates;
};

/** Cycle-level simulator bound to one mapped automaton. */
class CacheAutomatonSim
{
  public:
    explicit CacheAutomatonSim(const MappedAutomaton &mapped,
                               const SimOptions &opts = {});

    /**
     * Co-owning variant for automata loaded from disk (the persist
     * layer returns shared ownership so the sim can outlive the
     * loader's scope). @throws CaError when @p mapped is null.
     */
    explicit CacheAutomatonSim(
        std::shared_ptr<const MappedAutomaton> mapped,
        const SimOptions &opts = {});

    /** Rewinds to offset 0 (start states enabled, counters cleared). */
    void reset();

    /** Consumes one chunk of the stream; callable repeatedly. */
    void feed(const uint8_t *data, size_t size);

    /**
     * Finishes accounting (pipeline drain) and returns the cumulative
     * result; the simulator remains usable (feed() continues the stream).
     */
    SimResult result() const;

    /** Convenience: reset, feed the whole buffer, return the result. */
    SimResult run(const uint8_t *data, size_t size);

    /** run() with one-off options (replaces the bound options). */
    SimResult run(const uint8_t *data, size_t size,
                  const SimOptions &opts);

    SimResult
    run(const std::vector<uint8_t> &input)
    {
        return run(input.data(), input.size());
    }

    /**
     * Moves out the reports accumulated since the last
     * reset()/restore()/takeReports(); activity counters are untouched.
     * Lets an incremental driver (the multi-stream runtime) drain the
     * §2.8 output buffer between feed() slices without copying or
     * re-reading earlier reports.
     */
    std::vector<Report> takeReports();

    /** Absolute stream position: the offset the next symbol gets. */
    uint64_t streamOffset() const { return stream_offset_; }

    /** Captures the §2.9 suspend state. */
    SimCheckpoint checkpoint() const;

    /**
     * Restores a checkpoint taken from a simulator of the same mapped
     * automaton. Counters and reports restart from zero (the OS keeps the
     * already-drained output buffer); the frontier and offset resume.
     */
    void restore(const SimCheckpoint &ckpt);

    const MappedAutomaton &mapped() const { return mapped_; }

  private:
    /** Keeps a loaded automaton alive; null when bound by reference. */
    std::shared_ptr<const MappedAutomaton> owned_;
    const MappedAutomaton &mapped_;
    SimOptions opts_;

    // Per-state precomputation, flattened for locality in the hot loop.
    std::vector<uint32_t> partition_of_;
    std::vector<uint8_t> cross_flags_; ///< bit0: G1 source, bit1: G4 source.
    std::vector<StateId> all_input_;
    /** Flat 4-word label images: labels_[s*4 + w]. */
    std::vector<uint64_t> labels_;
    /** CSR successor lists. */
    std::vector<uint32_t> succ_xadj_;
    std::vector<StateId> succ_;
    /** Report flag + id packed: (id << 1) | report. */
    std::vector<uint64_t> report_info_;

    // Stream state.
    std::vector<StateId> enabled_;
    BitVector enabled_mask_;
    std::vector<StateId> active_scratch_;
    std::vector<uint64_t> partition_epoch_;
    uint64_t epoch_counter_ = 0;
    uint64_t pending_reports_ = 0;
    /** Absolute stream position (survives restore; stamps reports). */
    uint64_t stream_offset_ = 0;

    SimResult acc_;
};

} // namespace ca

#endif // CA_SIM_ENGINE_H
