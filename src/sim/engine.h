/**
 * @file
 * Cycle-level Cache Automaton simulator.
 *
 * Executes a *mapped* automaton the way the hardware does (§2.2-2.5):
 * every cycle, partitions with a non-zero active-state vector perform an
 * array read (state match), matched states traverse the L-switch, and
 * cross-partition transitions traverse the G-switches. The simulator's
 * per-cycle activity statistics (active partitions, active states, G1/G4
 * crossings) are exactly what the energy model consumes — the same
 * methodology the paper uses (VASim activity feeding derived constants).
 *
 * The engine is incremental: feed() consumes stream chunks, and the §2.9
 * suspend/resume model is supported by checkpoint()/restore() (the
 * hardware records the active-state vector and input symbol counter).
 *
 * Two execution kernels compute the same step (SimKernel): a sparse
 * frontier-iterating stepper (O(active states)/symbol) and a dense
 * bit-parallel stepper that materializes the §2.2 row read — per-
 * partition 256-entry symbol→match-mask tables AND-ed against the
 * active vector in whole 64-bit words (O(partitions)/symbol). `Auto`
 * picks per block on measured enabled-frontier density, so small- and
 * large-frontier regimes each get their fast path.
 *
 * Functional behaviour (the report stream) is bit-identical to the CPU
 * oracle engine under every kernel; within a cycle, reports are emitted
 * in ascending state id order (the canonical order all engines share).
 * The test suite enforces this on randomized automata.
 */
#ifndef CA_SIM_ENGINE_H
#define CA_SIM_ENGINE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "arch/energy.h"
#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "core/bitvector.h"
#include "score/semiring.h"

namespace ca {

/**
 * Execution kernel for the per-symbol step (DESIGN.md §7).
 *
 *  - Sparse: iterate the enabled-state frontier; O(active states) per
 *    symbol. Wins when few states are active (DFA-like automata).
 *  - Dense: bit-parallel §2.2 row-read model — per-partition 256-entry
 *    symbol→match-mask tables and per-state successor masks, stepped
 *    with whole 64-bit words. Cost is O(partitions) per symbol
 *    regardless of activity; wins on high-activity automata (Fermi,
 *    SPM, Protomata-class).
 *  - Auto: per-block selection on an EWMA of enabled-frontier density
 *    (enabled states ÷ total states) — the sparse kernel's actual cost
 *    driver, which includes always-enabled all-input start states.
 *
 * All kernels are bit-identical: same report stream, same activity
 * counters (enforced against the CPU oracle by tests/kernel_test.cpp).
 * The CA_SIM_KERNEL environment variable ("sparse"/"dense"/"auto"),
 * when set, overrides the option — CI uses it to run the whole sim
 * suite under every kernel.
 */
enum class SimKernel : uint8_t
{
    Sparse,
    Dense,
    Auto,
};

/** Parses "sparse"/"dense"/"auto"; nullopt on anything else. */
std::optional<SimKernel> parseKernelName(std::string_view name);

/** The kernel's canonical spelling ("sparse"/"dense"/"auto"). */
const char *kernelName(SimKernel k);

/**
 * The $CA_SIM_KERNEL override, parsed once per process (CI uses it to
 * run the whole sim suite under every kernel). Unrecognized values warn
 * once and fall back to Auto — a typo in a CI matrix must be loud, but
 * pinning the run to a kernel that doesn't exist would be worse.
 * Returns nullopt only when the variable is unset/empty.
 */
std::optional<SimKernel> simKernelEnvOverride();

/** Simulation controls. */
struct SimOptions
{
    bool collectReports = true;
    /** Record a per-cycle activity trace (costly; for tests/ablations). */
    bool recordTrace = false;
    /** Input FIFO depth (§2.8). */
    int fifoDepth = 128;
    /** Symbols refilled per cache-block fetch into the FIFO. */
    int fifoRefillSymbols = 64;
    /** Output buffer entries before an interrupt fires (§2.8). */
    int outputBufferDepth = 64;
    /** Per-symbol stepper (overridable via $CA_SIM_KERNEL). */
    SimKernel kernel = SimKernel::Auto;
    /**
     * Auto: run the dense kernel while the EWMA of enabled-frontier
     * density (enabled states ÷ total states) exceeds this. The default
     * sits in the measured crossover band (bench_kernel_comparison:
     * sparse still wins at ~0.011, dense from ~0.025 — about 3-6
     * enabled states per 256-slot partition, since one sparse state
     * visit costs several of the dense scan's sequential word ops).
     */
    double autoDensityThreshold = 0.02;
    /** Auto: EWMA smoothing factor for per-block density samples. */
    double autoEwmaAlpha = 0.25;
    /** Auto: symbols per block between kernel re-evaluations. */
    uint32_t autoBlockSymbols = 4096;
    /**
     * ⊕ for weighted automata (docs/SCORING.md): how alternative path
     * scores into one state combine. Ignored (zero-cost) when the bound
     * automaton carries no weights — unweighted rulesets run the exact
     * unscored kernels.
     */
    ScoreSemiring semiring = ScoreSemiring::MaxPlus;
};

/** One cycle of recorded activity (when SimOptions::recordTrace). */
struct CycleTrace
{
    uint32_t activePartitions = 0;
    uint32_t activeStates = 0;
    uint32_t g1Crossings = 0;
    uint32_t g4Crossings = 0;
    uint32_t reportsFired = 0;

    bool operator==(const CycleTrace &) const = default;
};

/** Results of a simulated stream (cumulative since reset). */
struct SimResult
{
    uint64_t symbols = 0;
    /** Pipeline cycles = symbols + fill (3-stage pipeline, §2.5). */
    uint64_t cycles = 0;

    std::vector<Report> reports;

    // Totals over all symbols.
    uint64_t totalActivePartitionCycles = 0;
    uint64_t totalActiveStates = 0;
    /**
     * Sum over symbols of the enabled-frontier size (states holding an
     * enable bit when the symbol arrives, matched or not). This is the
     * sparse kernel's per-symbol workload and the quantity the Auto
     * selector's density EWMA tracks.
     */
    uint64_t totalEnabledStates = 0;
    uint64_t totalG1Crossings = 0;
    uint64_t totalG4Crossings = 0;

    // System-integration counters (§2.8).
    uint64_t fifoRefills = 0;
    uint64_t outputBufferInterrupts = 0;

    // Kernel accounting: which stepper executed each symbol, and how
    // often Auto flipped between them mid-stream.
    uint64_t sparseKernelSymbols = 0;
    uint64_t denseKernelSymbols = 0;
    uint64_t kernelSwitches = 0;

    std::vector<CycleTrace> trace;

    /** Mean activity factors for the energy model. */
    ActivityStats activity() const;

    /** Average active states per symbol (Table 1's rightmost columns). */
    double avgActiveStates() const;

    /** Wall-clock seconds at @p freq_hz (1 symbol per cycle). */
    double seconds(double freq_hz) const;
};

/**
 * Suspend/resume snapshot (§2.9): the active-state vector (here: the
 * enabled frontier) and the input symbol counter. Restoring into a fresh
 * simulator bound to the same mapped automaton continues the stream
 * exactly where it left off.
 */
struct SimCheckpoint
{
    uint64_t symbolOffset = 0;
    std::vector<StateId> enabledStates;
    /**
     * Per-state accumulated scores, parallel to enabledStates. Empty for
     * unweighted automata (and accepted as all-zero on restore into a
     * weighted one); otherwise the same length as enabledStates.
     */
    std::vector<Score> enabledScores;
};

/**
 * Live Auto-kernel decision introspection (docs/OBSERVABILITY.md).
 *
 * Cumulative since engine construction: unlike SimResult's counters,
 * these survive reset()/restore(), because they describe the *engine as
 * a resource* (a runtime worker restores a different session's
 * checkpoint into the same engine many times per second, and the
 * interesting question — "is the Auto kernel flapping on this worker?" —
 * spans those restores).
 */
struct KernelDecisionStats
{
    uint64_t sparseBlocks = 0;   ///< Blocks dispatched to the sparse kernel.
    uint64_t denseBlocks = 0;    ///< Blocks dispatched to the dense kernel.
    uint64_t sparseSymbols = 0;
    uint64_t denseSymbols = 0;
    uint64_t kernelFlips = 0;    ///< Consecutive blocks on different kernels.
    double densityEwma = 0.0;    ///< Current frontier-density EWMA.
    int lastKernel = -1;         ///< -1 none yet, 0 sparse, 1 dense.
};

/** Cycle-level simulator bound to one mapped automaton. */
class CacheAutomatonSim
{
  public:
    explicit CacheAutomatonSim(const MappedAutomaton &mapped,
                               const SimOptions &opts = {});

    /**
     * Co-owning variant for automata loaded from disk (the persist
     * layer returns shared ownership so the sim can outlive the
     * loader's scope). @throws CaError when @p mapped is null.
     */
    explicit CacheAutomatonSim(
        std::shared_ptr<const MappedAutomaton> mapped,
        const SimOptions &opts = {});

    /** Rewinds to offset 0 (start states enabled, counters cleared). */
    void reset();

    /** Consumes one chunk of the stream; callable repeatedly. */
    void feed(const uint8_t *data, size_t size);

    /**
     * Finishes accounting (pipeline drain) and returns the cumulative
     * result; the simulator remains usable (feed() continues the stream).
     */
    SimResult result() const;

    /** Convenience: reset, feed the whole buffer, return the result. */
    SimResult run(const uint8_t *data, size_t size);

    /**
     * run() with one-off options: @p opts applies to this run only; the
     * originally-bound options are restored before returning, so later
     * feed()/run() calls behave as if this call never happened.
     */
    SimResult run(const uint8_t *data, size_t size,
                  const SimOptions &opts);

    SimResult
    run(const std::vector<uint8_t> &input)
    {
        return run(input.data(), input.size());
    }

    /**
     * Moves out the reports accumulated since the last
     * reset()/restore()/takeReports(); activity counters are untouched.
     * Lets an incremental driver (the multi-stream runtime) drain the
     * §2.8 output buffer between feed() slices without copying or
     * re-reading earlier reports.
     */
    std::vector<Report> takeReports();

    /** Absolute stream position: the offset the next symbol gets. */
    uint64_t streamOffset() const { return stream_offset_; }

    /** Captures the §2.9 suspend state. */
    SimCheckpoint checkpoint() const;

    /**
     * Restores a checkpoint taken from a simulator of the same mapped
     * automaton. Counters and reports restart from zero (the OS keeps the
     * already-drained output buffer); the frontier and offset resume.
     */
    void restore(const SimCheckpoint &ckpt);

    const MappedAutomaton &mapped() const { return mapped_; }

    /** True when the bound automaton carries transition weights. */
    bool scored() const { return scored_; }

    /**
     * Point-in-time copy of the per-block kernel-decision counters.
     * Safe to call from another thread while feed() runs (the fields
     * are kept in relaxed atomics and read individually, so the copy is
     * approximately — not transactionally — consistent).
     */
    KernelDecisionStats kernelStats() const;

  private:
    /**
     * The per-symbol steppers, instantiated twice at compile time: the
     * Scored=false bodies are token-identical to the unscored kernels
     * (score accumulation is an if-constexpr block), so unweighted
     * automata pay nothing for the scoring subsystem.
     */
    template <bool Scored>
    void feedSparseImpl(const uint8_t *data, size_t size);
    template <bool Scored>
    void feedDenseImpl(const uint8_t *data, size_t size);

    /** Executes @p size symbols with the frontier-iterating stepper. */
    void feedSparse(const uint8_t *data, size_t size);

    /** Executes @p size symbols with the bit-parallel stepper. */
    void feedDense(const uint8_t *data, size_t size);

    /**
     * Emits the cycle's reports in canonical (ascending state id) order
     * and runs the §2.8 output-buffer accounting. Both kernels call
     * this, which is what makes their report streams bit-identical.
     */
    void emitCycleReports();

    /** Scored twin of emitCycleReports (same order, score payloads). */
    void emitCycleReportsScored();

    /** Resolves opts_.kernel against the $CA_SIM_KERNEL override. */
    SimKernel effectiveKernel() const;

    /** True when the next block should run the dense kernel. */
    bool chooseDense();

    /** Builds the dense tables once (no-op when already built). */
    void ensureDenseTables();

    /** Moves the live frontier between representations. */
    void syncDenseFromSparse();
    void syncSparseFromDense();

    /** Keeps a loaded automaton alive; null when bound by reference. */
    std::shared_ptr<const MappedAutomaton> owned_;
    const MappedAutomaton &mapped_;
    SimOptions opts_;

    // Per-state precomputation, flattened for locality in the hot loop.
    std::vector<uint32_t> partition_of_;
    std::vector<uint8_t> cross_flags_; ///< bit0: G1 source, bit1: G4 source.
    std::vector<StateId> all_input_;
    /** Flat 4-word label images: labels_[s*4 + w]. */
    std::vector<uint64_t> labels_;
    /** CSR successor lists. */
    std::vector<uint32_t> succ_xadj_;
    std::vector<StateId> succ_;
    /** Report flag + id packed: (id << 1) | report. */
    std::vector<uint64_t> report_info_;

    // Scoring tables (built only for weighted automata; empty otherwise).
    bool scored_ = false;
    /** Per-edge weights, CSR-parallel to succ_. */
    std::vector<Weight> succ_w_;
    /** Per-state start weights. */
    std::vector<Weight> start_w_;

    // Stream state.
    std::vector<StateId> enabled_;
    BitVector enabled_mask_;
    std::vector<StateId> active_scratch_;
    std::vector<uint64_t> partition_epoch_;
    uint64_t epoch_counter_ = 0;
    uint64_t pending_reports_ = 0;
    /** Absolute stream position (survives restore; stamps reports). */
    uint64_t stream_offset_ = 0;

    /** States that fired a report this cycle (sorted before emission). */
    std::vector<StateId> cycle_report_scratch_;
    /** Scored twin: (state, score) pairs, sorted by state before emission. */
    std::vector<std::pair<StateId, Score>> cycle_report_scored_;

    // Scored-frontier state (allocated only when scored_). Sparse scores
    // are state-indexed, valid where enabled_mask_ is set; dense scores
    // are dense-indexed, valid where the frontier bit vector is set.
    std::vector<Score> score_cur_;
    std::vector<Score> score_nxt_;
    std::vector<Score> dense_score_cur_;
    std::vector<Score> dense_score_nxt_;
    /** First-write-vs-combine discriminator for dense score targets. */
    std::vector<uint64_t> dense_score_epoch_;
    uint64_t dense_epoch_counter_ = 0;

    // Dense-kernel precomputation (built lazily: a sparse-only sim pays
    // nothing). Layouts use 4 words = 256 bits per partition, the §2.2
    // array geometry; a state's dense index is partition*256 + slot.
    bool dense_ready_ = false;
    bool dense_unavailable_ = false;
    uint32_t dense_partitions_ = 0;
    /** state → dense index. */
    std::vector<uint32_t> dense_index_of_;
    /** dense index → state (kInvalidState for unused slots). */
    std::vector<StateId> state_of_dense_;
    /** Symbol-major row reads: rows_[((c*P)+p)*4 + w] (§2.2). */
    std::vector<uint64_t> dense_rows_;
    /** L-switch: per-state intra-partition successor masks
        lswitch_[(dense_index*4) + w]. */
    std::vector<uint64_t> dense_lswitch_;
    /** G-switch: CSR of cross-partition successor dense indices. */
    std::vector<uint32_t> dense_cross_xadj_;
    std::vector<uint32_t> dense_cross_;
    /** Per-partition G1-source / G4-source / reporting masks (p*4+w). */
    std::vector<uint64_t> dense_g1_;
    std::vector<uint64_t> dense_g4_;
    std::vector<uint64_t> dense_report_;
    /** Non-zero words of the all-input start mask, OR-ed in each cycle. */
    std::vector<std::pair<uint32_t, uint64_t>> dense_allinput_words_;
    /** Frontier vectors (current / next), P*256 bits each. */
    BitVector dense_cur_;
    BitVector dense_nxt_;
    /** Which representation holds the live frontier. */
    bool dense_active_ = false;

    // Auto-kernel state.
    double density_ewma_ = 0.0;
    bool density_seeded_ = false;
    int last_kernel_ = -1; ///< -1 none, 0 sparse, 1 dense.

    // Engine-lifetime kernel-decision counters behind kernelStats().
    // Relaxed atomics: written once per block on the feeding thread,
    // read concurrently by StreamServer::inspect().
    std::atomic<uint64_t> ks_sparse_blocks_{0};
    std::atomic<uint64_t> ks_dense_blocks_{0};
    std::atomic<uint64_t> ks_sparse_symbols_{0};
    std::atomic<uint64_t> ks_dense_symbols_{0};
    std::atomic<uint64_t> ks_flips_{0};
    std::atomic<double> ks_density_{0.0};
    std::atomic<int> ks_last_{-1};

    SimResult acc_;
};

} // namespace ca

#endif // CA_SIM_ENGINE_H
