/**
 * @file
 * DFA engine: the fastest compute-centric baseline for patterns whose DFA
 * stays tractable (§6 discusses why CPU engines limit themselves to DFAs).
 * One table lookup per input symbol; reports stream out per edge.
 */
#ifndef CA_BASELINE_DFA_ENGINE_H
#define CA_BASELINE_DFA_ENGINE_H

#include <vector>

#include "baseline/nfa_engine.h"
#include "nfa/dfa.h"

namespace ca {

/** Runs @p dfa over a buffer, returning the fired reports (state = 0). */
std::vector<Report> runDfa(const Dfa &dfa, const uint8_t *data, size_t size);

inline std::vector<Report>
runDfa(const Dfa &dfa, const std::vector<uint8_t> &input)
{
    return runDfa(dfa, input.data(), input.size());
}

} // namespace ca

#endif // CA_BASELINE_DFA_ENGINE_H
