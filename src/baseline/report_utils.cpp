#include "baseline/report_utils.h"

#include <algorithm>

namespace ca {

std::vector<Report>
dedupeReports(const std::vector<Report> &reports)
{
    std::set<std::pair<uint64_t, uint32_t>> seen;
    std::vector<Report> out;
    out.reserve(reports.size());
    for (const Report &r : reports)
        if (seen.emplace(r.offset, r.reportId).second)
            out.push_back(Report{r.offset, r.reportId, 0});
    std::sort(out.begin(), out.end());
    return out;
}

bool
sameReportEvents(const std::vector<Report> &a, const std::vector<Report> &b)
{
    return dedupeReports(a) == dedupeReports(b);
}

std::map<uint32_t, uint64_t>
countByRule(const std::vector<Report> &reports)
{
    std::map<uint32_t, uint64_t> counts;
    for (const Report &r : reports)
        ++counts[r.reportId];
    return counts;
}

std::vector<uint64_t>
offsetsOfRule(const std::vector<Report> &reports, uint32_t report_id)
{
    std::vector<uint64_t> offsets;
    for (const Report &r : reports)
        if (r.reportId == report_id)
            offsets.push_back(r.offset);
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
    return offsets;
}

std::vector<Report>
collapseBursts(const std::vector<Report> &reports, uint64_t min_gap)
{
    std::vector<Report> sorted = dedupeReports(reports);
    // Track the last kept offset per rule.
    std::map<uint32_t, uint64_t> last;
    std::vector<Report> out;
    for (const Report &r : sorted) {
        auto it = last.find(r.reportId);
        if (it == last.end() || r.offset >= it->second + min_gap) {
            out.push_back(r);
            last[r.reportId] = r.offset;
        }
    }
    return out;
}

} // namespace ca
