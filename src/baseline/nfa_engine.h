/**
 * @file
 * CPU (compute-centric) NFA engine.
 *
 * A frontier-based interpreter in the style of VASim: only enabled states
 * are visited each cycle, which is the best a conventional CPU can do on a
 * homogeneous NFA. It serves two roles here:
 *   1. the paper's x86 baseline class of engines (§6, compute-centric), and
 *   2. the functional oracle every Cache Automaton simulation is checked
 *      against (same report stream, byte for byte).
 */
#ifndef CA_BASELINE_NFA_ENGINE_H
#define CA_BASELINE_NFA_ENGINE_H

#include <cstdint>
#include <vector>

#include "core/bitvector.h"
#include "nfa/nfa.h"

namespace ca {

/** One pattern-match event. */
struct Report
{
    uint64_t offset = 0;   ///< Input offset of the activating symbol.
    uint32_t reportId = 0; ///< The pattern/rule id.
    StateId state = 0;     ///< The reporting state.
    /**
     * Accumulated path score (semiring sum over all paths reaching the
     * reporting state at this offset). Always 0 for unweighted automata,
     * so scored and boolean reports compare equal on the same ruleset.
     */
    int64_t score = 0;

    bool operator==(const Report &o) const = default;
    bool
    operator<(const Report &o) const
    {
        if (offset != o.offset)
            return offset < o.offset;
        if (reportId != o.reportId)
            return reportId < o.reportId;
        return state < o.state;
    }
};

/** Frontier-based homogeneous-NFA interpreter. */
class NfaEngine
{
  public:
    explicit NfaEngine(const Nfa &nfa);

    /** Rewinds to offset 0 (start states enabled). */
    void reset();

    /**
     * Consumes one symbol; matching enabled states activate, reports fire,
     * and successors become enabled for the next symbol.
     */
    void step(uint8_t symbol);

    /** Runs a whole buffer from a fresh reset. */
    std::vector<Report> run(const uint8_t *data, size_t size);

    std::vector<Report> run(const std::vector<uint8_t> &input)
    {
        return run(input.data(), input.size());
    }

    /** Reports accumulated since the last reset. */
    const std::vector<Report> &reports() const { return reports_; }

    /** States active for the most recent symbol. */
    const std::vector<StateId> &activeStates() const { return active_; }

    /** Total state activations since reset (CPU work proxy). */
    uint64_t totalActivations() const { return total_activations_; }

    uint64_t symbolsProcessed() const { return offset_; }

  private:
    const Nfa &nfa_;
    std::vector<StateId> all_input_starts_;
    std::vector<StateId> start_of_data_starts_;

    std::vector<StateId> enabled_;   ///< Frontier for the next symbol.
    BitVector enabled_mask_;         ///< Dedup mask over enabled_.
    std::vector<StateId> active_;
    std::vector<StateId> report_scratch_; ///< Reporting states, per cycle.
    std::vector<Report> reports_;
    uint64_t offset_ = 0;
    uint64_t total_activations_ = 0;
};

} // namespace ca

#endif // CA_BASELINE_NFA_ENGINE_H
