#include "baseline/nfa_engine.h"

#include <algorithm>

#include "core/error.h"
#include "telemetry/telemetry.h"

namespace ca {

NfaEngine::NfaEngine(const Nfa &nfa)
    : nfa_(nfa), enabled_mask_(nfa.numStates())
{
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        switch (nfa.state(s).start) {
          case StartType::AllInput:
            all_input_starts_.push_back(s);
            break;
          case StartType::StartOfData:
            start_of_data_starts_.push_back(s);
            break;
          case StartType::None:
            break;
        }
    }
    reset();
}

void
NfaEngine::reset()
{
    enabled_.clear();
    enabled_mask_.clearAll();
    active_.clear();
    reports_.clear();
    offset_ = 0;
    total_activations_ = 0;
    for (StateId s : start_of_data_starts_) {
        if (!enabled_mask_.test(s)) {
            enabled_mask_.set(s);
            enabled_.push_back(s);
        }
    }
    for (StateId s : all_input_starts_) {
        if (!enabled_mask_.test(s)) {
            enabled_mask_.set(s);
            enabled_.push_back(s);
        }
    }
}

void
NfaEngine::step(uint8_t symbol)
{
    active_.clear();
    report_scratch_.clear();
    // State-match phase: enabled states whose label contains the symbol.
    for (StateId s : enabled_) {
        if (nfa_.state(s).label.test(symbol)) {
            active_.push_back(s);
            if (nfa_.state(s).report)
                report_scratch_.push_back(s);
        }
    }
    total_activations_ += active_.size();
    // Canonical within-cycle report order: ascending state id (shared
    // with the Cache Automaton simulator's kernels, which must produce a
    // bit-identical stream).
    std::sort(report_scratch_.begin(), report_scratch_.end());
    for (StateId s : report_scratch_)
        reports_.push_back(Report{offset_, nfa_.state(s).reportId, s});

    // State-transition phase: successors of active states, plus the
    // always-enabled AllInput start states, form the next frontier. Only
    // the bits set last cycle are cleared (a full clear would be O(|Q|)).
    for (StateId s : enabled_)
        enabled_mask_.resetUnchecked(s);
    enabled_.clear();
    for (StateId s : active_) {
        for (StateId t : nfa_.state(s).out) {
            if (!enabled_mask_.testUnchecked(t)) {
                enabled_mask_.setUnchecked(t);
                enabled_.push_back(t);
            }
        }
    }
    for (StateId s : all_input_starts_) {
        if (!enabled_mask_.testUnchecked(s)) {
            enabled_mask_.setUnchecked(s);
            enabled_.push_back(s);
        }
    }
    ++offset_;
}

std::vector<Report>
NfaEngine::run(const uint8_t *data, size_t size)
{
    CA_TRACE_SCOPE("ca.baseline.nfa_run");
    reset();
    for (size_t i = 0; i < size; ++i)
        step(data[i]);
    CA_COUNTER_ADD("ca.baseline.nfa_symbols", size);
    CA_COUNTER_ADD("ca.baseline.nfa_reports", reports_.size());
    return reports_;
}

} // namespace ca
