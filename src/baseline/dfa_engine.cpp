#include "baseline/dfa_engine.h"

#include "telemetry/telemetry.h"

namespace ca {

std::vector<Report>
runDfa(const Dfa &dfa, const uint8_t *data, size_t size)
{
    CA_TRACE_SCOPE("ca.baseline.dfa_run");
    CA_COUNTER_ADD("ca.baseline.dfa_symbols", size);
    std::vector<Report> reports;
    Dfa::DfaStateId cur = dfa.startState();
    for (size_t i = 0; i < size; ++i) {
        uint8_t c = data[i];
        if (const std::vector<uint32_t> *rs = dfa.reportsOn(cur, c)) {
            for (uint32_t id : *rs)
                reports.push_back(Report{i, id, 0});
        }
        cur = dfa.next(cur, c);
    }
    return reports;
}

} // namespace ca
