/**
 * @file
 * Report-stream post-processing utilities.
 *
 * Hardware report streams are raw: a rule with several accepting STEs may
 * fire multiple reports at one offset, and overlapping occurrences fire at
 * every end position. Downstream applications usually want deduplicated
 * or aggregated views; these helpers provide the common ones and are the
 * canonical way to compare report streams from automata that were
 * transformed (merging changes state ids but not (offset, id) events).
 */
#ifndef CA_BASELINE_REPORT_UTILS_H
#define CA_BASELINE_REPORT_UTILS_H

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "baseline/nfa_engine.h"

namespace ca {

/** Distinct (offset, reportId) events, sorted. State ids are dropped. */
std::vector<Report> dedupeReports(const std::vector<Report> &reports);

/** True when two streams contain the same (offset, reportId) events. */
bool sameReportEvents(const std::vector<Report> &a,
                      const std::vector<Report> &b);

/** Per-rule hit counts. */
std::map<uint32_t, uint64_t> countByRule(const std::vector<Report> &reports);

/** Offsets at which rule @p report_id fired (deduplicated, ascending). */
std::vector<uint64_t> offsetsOfRule(const std::vector<Report> &reports,
                                    uint32_t report_id);

/**
 * Collapses bursts: consecutive reports of one rule closer than
 * @p min_gap offsets apart are merged into the first (e.g. a Levenshtein
 * automaton firing at several end positions of one occurrence).
 */
std::vector<Report> collapseBursts(const std::vector<Report> &reports,
                                   uint64_t min_gap);

} // namespace ca

#endif // CA_BASELINE_REPORT_UTILS_H
