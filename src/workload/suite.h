/**
 * @file
 * The 20-benchmark evaluation suite (Table 1).
 *
 * Each entry synthesizes an NFA matching the published structure of the
 * corresponding ANMLZoo/Regex benchmark (rule counts, states-per-component,
 * component tails) together with a domain-shaped input stream. The paper's
 * Table 1 values are carried alongside so benches can print
 * paper-vs-measured deltas. Scale < 1 shrinks rule counts proportionally
 * (used by tests); scale = 1 is the full published size.
 */
#ifndef CA_WORKLOAD_SUITE_H
#define CA_WORKLOAD_SUITE_H

#include <functional>
#include <string>
#include <vector>

#include "nfa/nfa.h"
#include "workload/input_gen.h"

namespace ca {

/** One row of the paper's Table 1 (either design variant). */
struct PaperRow
{
    size_t states = 0;
    size_t connectedComponents = 0;
    size_t largestComponent = 0;
    double avgActiveStates = 0.0;
};

/** One benchmark: generator + input shape + published reference rows. */
struct Benchmark
{
    std::string name;
    std::string domain;
    PaperRow paperPerf;  ///< Table 1, performance-optimized columns.
    PaperRow paperSpace; ///< Table 1, space-optimized columns.
    StreamKind stream = StreamKind::Payload;
    double plantsPer4k = 1.0;

    /** Rule/pattern texts at @p scale (used for witness planting too). */
    std::function<std::vector<std::string>(double scale, uint64_t seed)>
        rules;
    /** Builds the NFA at @p scale. Defaults to compiling rules(). */
    std::function<Nfa(double scale, uint64_t seed)> build;
};

/** The full 20-benchmark suite, in Table 1 order. */
const std::vector<Benchmark> &benchmarkSuite();

/** Lookup by name. @throws CaError when unknown. */
const Benchmark &findBenchmark(const std::string &name);

/** Canonical rule seed benches/tests use so inputs and NFAs agree. */
constexpr uint64_t kDefaultRuleSeed = 0xCA11;

/**
 * Builds the benchmark's input stream with witnesses planted from the
 * same ruleset the NFA was built from — pass the same @p scale and
 * @p rule_seed given to Benchmark::build so planted matches really fire.
 */
std::vector<uint8_t> benchmarkInput(const Benchmark &b, size_t bytes,
                                    uint64_t input_seed, double scale = 1.0,
                                    uint64_t rule_seed = kDefaultRuleSeed);

} // namespace ca

#endif // CA_WORKLOAD_SUITE_H
