/**
 * @file
 * Ruleset generators for the benchmark families.
 *
 * The ANMLZoo / Regex suite files the paper evaluates are not shipped with
 * this repository, so each family is *synthesized* to match the published
 * Table 1 structure (rule counts, states per rule, largest component) and
 * the domain's pattern style: dot-star and range rules (Becchi's Regex
 * suite), exact-match strings, Bro/Snort-like signatures, ClamAV byte
 * signatures, Brill tagging rules, PowerEN rules, PROSITE-style motifs,
 * SPM itemset sequences, RandomForest decision chains and Fermi detector
 * paths. All generators are deterministic in the seed.
 */
#ifndef CA_WORKLOAD_RULEGEN_H
#define CA_WORKLOAD_RULEGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"

namespace ca {

/**
 * Becchi-style synthetic rules: literal runs with `.*` gaps inserted with
 * probability @p dotstar_prob per rule (the 03/06/09 suffix in Table 1).
 */
std::vector<std::string> genDotstarRules(int rules, double dotstar_prob,
                                         int avg_len, uint64_t seed);

/** Rules where each position is a character range with prob @p range_prob. */
std::vector<std::string> genRangesRules(int rules, double range_prob,
                                        int avg_len, uint64_t seed);

/** Pure literal strings (ExactMatch). */
std::vector<std::string> genExactMatchRules(int rules, int avg_len,
                                            uint64_t seed);

/** Bro-like HTTP signature rules (short literals, few classes). */
std::vector<std::string> genBroRules(int rules, uint64_t seed);

/** TCP-stream rules: mixed literals/classes with counted repetitions. */
std::vector<std::string> genTcpRules(int rules, uint64_t seed);

/** Snort-like payload rules (anchors, classes, dotstars, repeats). */
std::vector<std::string> genSnortRules(int rules, uint64_t seed);

/** ClamAV-style byte signatures (hex escapes, wildcard gaps). */
std::vector<std::string> genClamAvRules(int rules, uint64_t seed);

/** PowerEN-style moderate rules. */
std::vector<std::string> genPowerEnRules(int rules, uint64_t seed);

/** Brill transformation-rule context patterns over words. */
std::vector<std::string> genBrillRules(int rules, uint64_t seed);

/**
 * Entity-resolution rules: person-name records matched in both token
 * orders with optional middle initials (high fan-out alternations).
 */
std::vector<std::string> genEntityResolutionRules(int rules, uint64_t seed);

/** Fermi detector path patterns: short always-active numeric chains. */
std::vector<std::string> genFermiRules(int rules, uint64_t seed);

/** Sequential-pattern-mining itemset sequences with [^sep]* gaps. */
std::vector<std::string> genSpmRules(int rules, uint64_t seed);

/** RandomForest decision chains: fixed-length exact feature sequences. */
std::vector<std::string> genRandomForestRules(int rules, int chain_len,
                                              uint64_t seed);

/** PROSITE-style protein motifs over the 20-letter amino alphabet. */
std::vector<std::string> genProtomataRules(int rules, uint64_t seed);

/** The amino-acid alphabet used by Protomata rules and inputs. */
const std::string &aminoAlphabet();

/** Lowercase word list used by Brill/EntityResolution rules and inputs. */
const std::vector<std::string> &wordLexicon();

} // namespace ca

#endif // CA_WORKLOAD_RULEGEN_H
