/**
 * @file
 * Approximate-match automata: Hamming and Levenshtein distance.
 *
 * Two of the paper's benchmarks (Table 1 rows 14-15) are distance automata
 * used for DNA/protein alignment on the AP. These are the real textbook
 * constructions, not statistical look-alikes: the Hamming automaton is a
 * (positions x errors) grid built directly in homogeneous form, and the
 * Levenshtein automaton is built as a classical NFA (match / substitute /
 * insert edges and delete epsilons) then homogenized.
 */
#ifndef CA_WORKLOAD_DISTANCE_H
#define CA_WORKLOAD_DISTANCE_H

#include <cstdint>
#include <string>

#include "nfa/nfa.h"

namespace ca {

/**
 * Automaton accepting strings within Hamming distance @p k of @p pattern
 * (same length, at most k substitutions). Anchored at start of data.
 *
 * States: match state M(i,e) labelled pattern[i] and mismatch state X(i,e)
 * labelled the complement, for each position i and error budget e.
 */
Nfa hammingNfa(const std::string &pattern, int k, uint32_t report_id = 0,
               bool anchored = true);

/**
 * Automaton accepting strings within Levenshtein distance @p k of
 * @p pattern (substitutions, insertions, deletions). Anchored.
 */
Nfa levenshteinNfa(const std::string &pattern, int k,
                   uint32_t report_id = 0, bool anchored = true);

} // namespace ca

#endif // CA_WORKLOAD_DISTANCE_H
