#include "workload/rulegen.h"

#include <array>

#include "core/error.h"

namespace ca {

namespace {

/** Characters safe to emit literally inside our regex dialect. */
bool
isPlainLiteral(char c)
{
    switch (c) {
      case '.': case '*': case '+': case '?': case '(': case ')':
      case '[': case ']': case '{': case '}': case '|': case '^':
      case '$': case '\\': case '-':
        return false;
      default:
        return c >= 0x20 && c < 0x7f;
    }
}

/** Appends @p c, escaping regex metacharacters. */
void
appendLiteral(std::string &out, char c)
{
    if (isPlainLiteral(c)) {
        out.push_back(c);
    } else {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\x%02x",
                      static_cast<unsigned char>(c));
        out += buf;
    }
}

std::string
randomWordLiteral(Rng &rng, int len)
{
    std::string s;
    for (int i = 0; i < len; ++i)
        s.push_back(rng.lowercase());
    return s;
}

/** A printable literal mixing letters, digits and punctuation. */
std::string
randomPayloadLiteral(Rng &rng, int len)
{
    static const char pool[] =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _/:=&%";
    std::string s;
    for (int i = 0; i < len; ++i) {
        char c = pool[rng.below(sizeof(pool) - 1)];
        std::string tmp;
        appendLiteral(tmp, c);
        s += tmp;
    }
    return s;
}

/** A short [x-y] range class over lowercase letters or digits. */
std::string
randomRangeClass(Rng &rng)
{
    bool digits = rng.chance(0.3);
    char base = digits ? '0' : 'a';
    int span = digits ? 10 : 26;
    int lo = static_cast<int>(rng.below(span - 2));
    int width = 2 + static_cast<int>(rng.below(
        static_cast<uint64_t>(span - lo - 1)));
    std::string s = "[";
    s.push_back(static_cast<char>(base + lo));
    s.push_back('-');
    s.push_back(static_cast<char>(base + lo + width - 1));
    s.push_back(']');
    return s;
}

int
jitteredLen(Rng &rng, int avg)
{
    int lo = std::max(2, avg - avg / 3);
    int hi = avg + avg / 3;
    return static_cast<int>(rng.range(lo, hi));
}

} // namespace

std::vector<std::string>
genDotstarRules(int rules, double dotstar_prob, int avg_len, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        int len = jitteredLen(rng, avg_len);
        std::string pat;
        // Becchi-style: with probability dotstar_prob the rule carries an
        // unbounded .* gap (possibly more than one for long rules).
        bool has_dot = rng.chance(dotstar_prob);
        int dot_at = has_dot ? 2 + static_cast<int>(rng.below(len - 3)) : -1;
        int second_dot =
            has_dot && len > 24 && rng.chance(0.4)
                ? dot_at + 4 +
                    static_cast<int>(rng.below(len - dot_at - 5))
                : -1;
        for (int i = 0; i < len; ++i) {
            if (i == dot_at || i == second_dot)
                pat += ".*";
            appendLiteral(pat, "etaoinshrdlcum"[rng.below(14)]);
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genRangesRules(int rules, double range_prob, int avg_len, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        int len = jitteredLen(rng, avg_len);
        std::string pat;
        for (int i = 0; i < len; ++i) {
            if (rng.chance(range_prob))
                pat += randomRangeClass(rng);
            else
                appendLiteral(pat, rng.lowercase());
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genExactMatchRules(int rules, int avg_len, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        int len = jitteredLen(rng, avg_len);
        std::string pat;
        for (int i = 0; i < len; ++i)
            appendLiteral(pat, rng.lowercase());
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genBroRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    static const char *kMethods[] = {"GET ", "POST ", "HEAD ", "PUT "};
    static const char *kHeaders[] = {
        "UserxAgent: ", "Host: ", "Cookie: ", "Referer: ",
        "ContentxType: "};
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        std::string pat;
        if (rng.chance(0.5)) {
            pat += kMethods[rng.below(4)];
            pat += "/";
            pat += randomWordLiteral(rng, 5 + rng.below(6));
        } else {
            pat += kHeaders[rng.below(5)];
            pat += randomWordLiteral(rng, 4 + rng.below(6));
        }
        // A few long URI rules reproduce Bro's component tail (~84).
        if (r % 47 == 0) {
            pat += "/";
            pat += randomWordLiteral(rng, 55 + rng.below(20));
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genTcpRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        std::string pat = randomPayloadLiteral(rng, 14 + rng.below(14));
        // A sprinkling of very large rules reproduces TCP's heavy tail
        // (Table 1's largest CA_P component is 391 states).
        if (r % 97 == 0) {
            pat += "[a-z]{";
            pat += std::to_string(180 + rng.below(160));
            pat += "}";
            pat += randomWordLiteral(rng, 6);
        } else if (rng.chance(0.4)) {
            pat += randomRangeClass(rng);
            pat += "{";
            pat += std::to_string(4 + rng.below(12));
            pat += "}";
            pat += randomWordLiteral(rng, 5);
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genSnortRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        std::string pat = randomPayloadLiteral(rng, 8 + rng.below(10));
        if (rng.chance(0.5)) {
            pat += ".*";
            pat += randomPayloadLiteral(rng, 6 + rng.below(10));
        }
        if (rng.chance(0.4)) {
            pat += "[0-9a-f]{";
            pat += std::to_string(3 + rng.below(8));
            pat += "}";
        }
        if (rng.chance(0.3)) {
            pat += "(";
            pat += randomWordLiteral(rng, 5);
            pat += "|";
            pat += randomWordLiteral(rng, 6);
            pat += ")";
        }
        // Shell-code style rules with long bounded gaps form the tail
        // (largest CA_P component ~222 in Table 1).
        if (r % 101 == 0) {
            pat += "[^\\x0a]{";
            pat += std::to_string(120 + rng.below(60));
            pat += "}";
            pat += randomWordLiteral(rng, 8);
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genClamAvRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        // Hex byte-string signatures with bounded wildcard gaps; ClamAV
        // components are long (avg ~96, largest 542 in Table 1).
        int segs = 2 + static_cast<int>(rng.below(3));
        int total = 44 + static_cast<int>(rng.below(64));
        if (r % 103 == 0)
            total = 420 + static_cast<int>(rng.below(100));
        std::string pat;
        for (int s = 0; s < segs; ++s) {
            int seg_len = total / segs;
            for (int i = 0; i < seg_len; ++i) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\x%02x",
                              static_cast<unsigned>(rng.below(256)));
                pat += buf;
            }
            if (s + 1 < segs) {
                pat += ".{";
                pat += std::to_string(1 + rng.below(4));
                pat += ",";
                pat += std::to_string(5 + rng.below(6));
                pat += "}";
            }
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genPowerEnRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        std::string pat = randomWordLiteral(rng, 7 + rng.below(7));
        if (rng.chance(0.6)) {
            pat += "[a-z0-9]";
            if (rng.chance(0.5))
                pat += "+";
            pat += randomWordLiteral(rng, 4 + rng.below(5));
        }
        // Occasional longer rules give PowerEN its ~48-state components.
        if (r % 29 == 0)
            pat += randomWordLiteral(rng, 24 + rng.below(16));
        out.push_back(pat);
    }
    return out;
}

const std::vector<std::string> &
wordLexicon()
{
    static const std::vector<std::string> lex = [] {
        // A compact synthetic lexicon: deterministic pseudo-words with a
        // Zipf-ish mix of short frequent and longer rare tokens.
        std::vector<std::string> words;
        Rng rng(0xB111);
        static const char *kCommon[] = {
            "the", "of", "and", "to", "in", "is", "was", "for", "that",
            "on", "with", "as", "by", "at", "from", "are", "this", "be",
            "or", "an"};
        for (const char *w : kCommon)
            words.push_back(w);
        for (int i = 0; i < 480; ++i) {
            int len = 3 + static_cast<int>(rng.below(7));
            std::string w;
            for (int j = 0; j < len; ++j)
                w.push_back(rng.lowercase());
            words.push_back(w);
        }
        return words;
    }();
    return lex;
}

std::vector<std::string>
genBrillRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    const auto &lex = wordLexicon();
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        // Brill transformation rules trigger on short word contexts:
        // " word1 word2 " or " word tag ".
        std::string pat = " ";
        pat += lex[rng.below(lex.size())];
        pat += " ";
        pat += lex[rng.below(lex.size())];
        if (rng.chance(0.7)) {
            pat += " ";
            pat += rng.chance(0.6) ? lex[rng.below(lex.size())]
                                   : randomWordLiteral(rng, 4);
        }
        if (rng.chance(0.5))
            pat += " ";
        // Long multi-word contexts form the tail (largest ~67 states).
        if (r % 83 == 0)
            for (int w = 0; w < 6; ++w)
                pat += lex[rng.below(lex.size())] + " ";
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genEntityResolutionRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    const auto &lex = wordLexicon();
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        // A person record matched in both token orders with an optional
        // middle initial; alternation of long branches gives the high
        // fan-out / ~95-state components Table 1 reports.
        std::string first =
            lex[rng.below(lex.size())] + lex[rng.below(lex.size())];
        std::string last =
            lex[rng.below(lex.size())] + lex[rng.below(lex.size())];
        std::string mid(1, rng.lowercase());
        std::string pat = "(";
        pat += first + " (" + mid + "[a-z]* )?" + last;
        pat += "|";
        pat += last + " (" + mid + "[a-z]* )?" + first;
        pat += "|";
        pat += first + "[a-z]{0,2} " + last;
        pat += "|";
        pat += last + ", " + first;
        // The shared record terminator joins the alternation branches into
        // one connected component per record (Table 1: 1000 components).
        pat += ") ";
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genFermiRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        // Short hit-coordinate chains over digits: nearly every input
        // symbol extends some chain, giving Fermi's very large active set.
        int len = 12 + static_cast<int>(rng.below(8));
        std::string pat;
        for (int i = 0; i < len; ++i) {
            if (rng.chance(0.7))
                pat += "[0-9]";
            else
                pat.push_back(static_cast<char>('0' + rng.below(10)));
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genSpmRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        // Frequent-itemset sequence: items separated by arbitrary-length
        // non-separator gaps; ';' terminates a transaction.
        int items = 10 + static_cast<int>(rng.below(2));
        std::string pat;
        for (int i = 0; i < items; ++i) {
            pat.push_back(static_cast<char>('a' + rng.below(20)));
            if (i + 1 < items)
                pat += "[^;]*";
        }
        out.push_back(pat);
    }
    return out;
}

std::vector<std::string>
genRandomForestRules(int rules, int chain_len, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        // One root-to-leaf decision path: a fixed-length chain of feature
        // outcomes over a small alphabet.
        std::string pat;
        for (int i = 0; i < chain_len; ++i)
            pat.push_back(static_cast<char>('p' + rng.below(5)));
        out.push_back(pat);
    }
    return out;
}

const std::string &
aminoAlphabet()
{
    static const std::string alpha = "ACDEFGHIKLMNPQRSTVWY";
    return alpha;
}

std::vector<std::string>
genProtomataRules(int rules, uint64_t seed)
{
    Rng rng(seed);
    const std::string &aa = aminoAlphabet();
    std::vector<std::string> out;
    out.reserve(rules);
    for (int r = 0; r < rules; ++r) {
        // PROSITE-style motif: residues, residue classes, x gaps and
        // bounded x(i,j) repetitions.
        int elems = 10 + static_cast<int>(rng.below(8));
        if (r % 97 == 0)
            elems = 60 + static_cast<int>(rng.below(25));
        std::string pat;
        for (int i = 0; i < elems; ++i) {
            double roll = rng.uniform();
            if (roll < 0.55) {
                pat.push_back(aa[rng.below(aa.size())]);
            } else if (roll < 0.8) {
                int k = 2 + static_cast<int>(rng.below(3));
                pat += "[";
                for (int j = 0; j < k; ++j)
                    pat.push_back(aa[rng.below(aa.size())]);
                pat += "]";
            } else if (roll < 0.93) {
                pat += "[A-Y]"; // x: any residue
            } else {
                pat += "[A-Y]{";
                int lo = 1 + static_cast<int>(rng.below(3));
                pat += std::to_string(lo);
                pat += ",";
                pat += std::to_string(lo + 1 + rng.below(3));
                pat += "}";
            }
        }
        out.push_back(pat);
    }
    return out;
}

} // namespace ca
