#include "workload/suite.h"

#include <cmath>

#include "core/error.h"
#include "nfa/glushkov.h"
#include "workload/distance.h"
#include "workload/rulegen.h"

namespace ca {

namespace {

int
scaled(size_t count, double scale)
{
    return std::max(1, static_cast<int>(std::lround(
        static_cast<double>(count) * scale)));
}

/** DNA pattern strings for the distance benchmarks. */
std::vector<std::string>
dnaPatterns(int count, int len, uint64_t seed)
{
    Rng rng(seed);
    static const char bases[] = "ACGT";
    std::vector<std::string> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i) {
        std::string p;
        for (int j = 0; j < len; ++j)
            p.push_back(bases[rng.below(4)]);
        out.push_back(p);
    }
    return out;
}

Benchmark
regexBenchmark(std::string name, std::string domain, PaperRow perf,
               PaperRow space, StreamKind stream, double plants,
               std::function<std::vector<std::string>(int, uint64_t)> gen)
{
    Benchmark b;
    b.name = std::move(name);
    b.domain = std::move(domain);
    b.paperPerf = perf;
    b.paperSpace = space;
    b.stream = stream;
    b.plantsPer4k = plants;
    size_t rules = perf.connectedComponents;
    b.rules = [gen, rules](double scale, uint64_t seed) {
        return gen(scaled(rules, scale), seed);
    };
    b.build = [b_rules = b.rules](double scale, uint64_t seed) {
        return compileRuleset(b_rules(scale, seed));
    };
    return b;
}

std::vector<Benchmark>
makeSuite()
{
    std::vector<Benchmark> s;

    s.push_back(regexBenchmark(
        "Dotstar03", "regex (Becchi)",
        PaperRow{12144, 299, 92, 3.78}, PaperRow{11124, 56, 1639, 0.84},
        StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genDotstarRules(rules, 0.3, 38, seed);
        }));
    s.push_back(regexBenchmark(
        "Dotstar06", "regex (Becchi)",
        PaperRow{12640, 298, 104, 37.55}, PaperRow{11598, 54, 1595, 3.40},
        StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genDotstarRules(rules, 0.6, 39, seed);
        }));
    s.push_back(regexBenchmark(
        "Dotstar09", "regex (Becchi)",
        PaperRow{12431, 297, 104, 38.07}, PaperRow{11229, 59, 1509, 4.39},
        StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genDotstarRules(rules, 0.9, 39, seed);
        }));
    s.push_back(regexBenchmark(
        "Ranges05", "regex (Becchi)",
        PaperRow{12439, 299, 94, 6.00}, PaperRow{11596, 63, 1197, 1.53},
        StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genRangesRules(rules, 0.5, 38, seed);
        }));
    s.push_back(regexBenchmark(
        "Ranges1", "regex (Becchi)",
        PaperRow{12464, 297, 96, 6.43}, PaperRow{11418, 57, 1820, 1.46},
        StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genRangesRules(rules, 1.0, 38, seed);
        }));
    s.push_back(regexBenchmark(
        "ExactMatch", "regex (Becchi)",
        PaperRow{12439, 297, 87, 5.99}, PaperRow{11270, 53, 998, 1.42},
        StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genExactMatchRules(rules, 40, seed);
        }));
    s.push_back(regexBenchmark(
        "Bro217", "network IDS",
        PaperRow{2312, 187, 84, 3.40}, PaperRow{1893, 59, 245, 1.89},
        StreamKind::Payload, 1.0, genBroRules));
    s.push_back(regexBenchmark(
        "TCP", "network IDS",
        PaperRow{19704, 715, 391, 12.94}, PaperRow{13819, 47, 3898, 2.21},
        StreamKind::Payload, 1.0, genTcpRules));
    s.push_back(regexBenchmark(
        "Snort", "network IDS",
        PaperRow{69029, 2585, 222, 431.43},
        PaperRow{34480, 73, 10513, 29.59}, StreamKind::Payload, 1.5,
        genSnortRules));
    s.push_back(regexBenchmark(
        "Brill", "natural language",
        PaperRow{42568, 1962, 67, 1662.76},
        PaperRow{26364, 1, 26364, 14.29}, StreamKind::Text, 2.0,
        genBrillRules));
    s.push_back(regexBenchmark(
        "ClamAV", "antivirus",
        PaperRow{49538, 515, 542, 82.84},
        PaperRow{42543, 41, 11965, 4.30}, StreamKind::Binary, 0.5,
        genClamAvRules));
    s.push_back(regexBenchmark(
        "Dotstar", "regex (Becchi)",
        PaperRow{96438, 2837, 95, 45.05}, PaperRow{38951, 90, 2977, 3.25},
        StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genDotstarRules(rules, 0.2, 33, seed);
        }));
    s.push_back(regexBenchmark(
        "EntityResolution", "databases",
        PaperRow{95136, 1000, 96, 1192.84}, PaperRow{5672, 5, 4568, 7.88},
        StreamKind::Text, 2.0, genEntityResolutionRules));

    // Levenshtein: 24 patterns; the real edit-distance construction.
    {
        Benchmark b;
        b.name = "Levenshtein";
        b.domain = "bioinformatics";
        b.paperPerf = PaperRow{2784, 24, 116, 114.21};
        b.paperSpace = PaperRow{2784, 1, 2605, 114.21};
        b.stream = StreamKind::Dna;
        b.plantsPer4k = 2.0;
        b.rules = [](double scale, uint64_t seed) {
            return dnaPatterns(scaled(24, scale), 13, seed);
        };
        b.build = [rules = b.rules](double scale, uint64_t seed) {
            Nfa combined;
            auto pats = rules(scale, seed);
            for (size_t i = 0; i < pats.size(); ++i)
                combined.merge(levenshteinNfa(pats[i], 2,
                    static_cast<uint32_t>(i), /*anchored=*/false));
            return combined;
        };
        s.push_back(std::move(b));
    }

    // Hamming: 93 patterns, substitutions only.
    {
        Benchmark b;
        b.name = "Hamming";
        b.domain = "bioinformatics";
        b.paperPerf = PaperRow{11346, 93, 122, 285.1};
        b.paperSpace = PaperRow{11254, 69, 11254, 240.09};
        b.stream = StreamKind::Dna;
        b.plantsPer4k = 2.0;
        b.rules = [](double scale, uint64_t seed) {
            return dnaPatterns(scaled(93, scale), 41, seed);
        };
        b.build = [rules = b.rules](double scale, uint64_t seed) {
            Nfa combined;
            auto pats = rules(scale, seed);
            for (size_t i = 0; i < pats.size(); ++i)
                combined.merge(hammingNfa(pats[i], 1,
                    static_cast<uint32_t>(i), /*anchored=*/false));
            return combined;
        };
        s.push_back(std::move(b));
    }

    s.push_back(regexBenchmark(
        "Fermi", "high-energy physics",
        PaperRow{40783, 2399, 17, 4715.96},
        PaperRow{39032, 648, 39038, 4715.96}, StreamKind::Digits, 0.5,
        genFermiRules));
    s.push_back(regexBenchmark(
        "SPM", "data mining",
        PaperRow{100500, 5025, 20, 6964.47},
        PaperRow{18126, 1, 18126, 1432.55}, StreamKind::Transactions, 0.5,
        genSpmRules));
    s.push_back(regexBenchmark(
        "RandomForest", "machine learning",
        PaperRow{33220, 1661, 20, 398.24},
        PaperRow{33220, 1, 33220, 398.24}, StreamKind::Payload, 0.5,
        [](int rules, uint64_t seed) {
            return genRandomForestRules(rules, 20, seed);
        }));
    s.push_back(regexBenchmark(
        "PowerEN", "regex (IBM)",
        PaperRow{14109, 1000, 48, 61.02},
        PaperRow{12194, 62, 357, 30.02}, StreamKind::Payload, 1.0,
        genPowerEnRules));
    s.push_back(regexBenchmark(
        "Protomata", "bioinformatics",
        PaperRow{42011, 2340, 123, 1578.51},
        PaperRow{38243, 513, 3745, 594.68}, StreamKind::Amino, 1.0,
        genProtomataRules));

    return s;
}

} // namespace

const std::vector<Benchmark> &
benchmarkSuite()
{
    static const std::vector<Benchmark> suite = makeSuite();
    return suite;
}

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const Benchmark &b : benchmarkSuite())
        if (b.name == name)
            return b;
    CA_THROW("unknown benchmark '" << name << "'");
}

std::vector<uint8_t>
benchmarkInput(const Benchmark &b, size_t bytes, uint64_t input_seed,
               double scale, uint64_t rule_seed)
{
    InputSpec spec;
    spec.kind = b.stream;
    spec.plantsPer4k = b.plantsPer4k;
    // Plant witnesses from a subsample of the rules (sampling all 5000
    // patterns every 4 KB would swamp the noise distribution).
    auto rules = b.rules(scale, rule_seed);
    size_t take = std::min<size_t>(rules.size(), 64);
    spec.plantPatterns.assign(rules.begin(),
                              rules.begin() + static_cast<long>(take));
    return buildInput(spec, bytes, input_seed);
}

} // namespace ca
