#include "workload/witness.h"

#include "core/error.h"
#include "nfa/regex_parser.h"

namespace ca {

namespace {

/** Uniform random member of a non-empty symbol set. */
char
sampleSymbol(const SymbolSet &s, Rng &rng)
{
    int n = s.count();
    CA_ASSERT(n > 0);
    uint64_t pick = rng.below(static_cast<uint64_t>(n));
    int c = s.first();
    while (pick-- > 0)
        c = s.next(c);
    return static_cast<char>(c);
}

/** Geometric draw with p = 0.5 capped at @p cap (mean ~1). */
int
geometric(Rng &rng, int cap)
{
    int n = 0;
    while (n < cap && rng.chance(0.5))
        ++n;
    return n;
}

void
sample(const RegexNode &node, Rng &rng, std::string &out)
{
    switch (node.op) {
      case RegexOp::Empty:
        break;
      case RegexOp::Class:
        out.push_back(sampleSymbol(node.cls, rng));
        break;
      case RegexOp::Concat:
        for (const auto &c : node.children)
            sample(*c, rng, out);
        break;
      case RegexOp::Alt: {
        size_t pick = rng.below(node.children.size());
        sample(*node.children[pick], rng, out);
        break;
      }
      case RegexOp::Star: {
        int reps = geometric(rng, 4);
        for (int i = 0; i < reps; ++i)
            sample(*node.children[0], rng, out);
        break;
      }
      case RegexOp::Plus: {
        int reps = 1 + geometric(rng, 3);
        for (int i = 0; i < reps; ++i)
            sample(*node.children[0], rng, out);
        break;
      }
      case RegexOp::Opt:
        if (rng.chance(0.5))
            sample(*node.children[0], rng, out);
        break;
      case RegexOp::Repeat: {
        int max = node.repeatMax == RegexNode::kUnbounded
            ? node.repeatMin + geometric(rng, 3)
            : node.repeatMax;
        int reps = node.repeatMin +
            static_cast<int>(rng.below(
                static_cast<uint64_t>(max - node.repeatMin) + 1));
        for (int i = 0; i < reps; ++i)
            sample(*node.children[0], rng, out);
        break;
      }
    }
}

} // namespace

std::string
sampleWitness(const RegexNode &node, Rng &rng)
{
    std::string out;
    sample(node, rng, out);
    return out;
}

std::string
sampleWitness(const std::string &pattern, Rng &rng)
{
    RegexPattern pat = parseRegex(pattern);
    return sampleWitness(*pat.root, rng);
}

} // namespace ca
