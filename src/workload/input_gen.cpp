#include "workload/input_gen.h"

#include <cstdlib>

#include "workload/rulegen.h"
#include "workload/witness.h"

namespace ca {

namespace {

void
appendNoise(std::vector<uint8_t> &out, StreamKind kind, size_t n, Rng &rng)
{
    switch (kind) {
      case StreamKind::Text: {
        const auto &lex = wordLexicon();
        while (n > 0) {
            const std::string &w = lex[rng.below(lex.size())];
            for (char c : w) {
                if (n == 0)
                    break;
                out.push_back(static_cast<uint8_t>(c));
                --n;
            }
            if (n > 0) {
                out.push_back(' ');
                --n;
            }
        }
        break;
      }
      case StreamKind::Payload: {
        static const char pool[] =
            "abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ./:=&%-_\r\n";
        for (size_t i = 0; i < n; ++i)
            out.push_back(
                static_cast<uint8_t>(pool[rng.below(sizeof(pool) - 1)]));
        break;
      }
      case StreamKind::Binary:
        for (size_t i = 0; i < n; ++i)
            out.push_back(rng.byte());
        break;
      case StreamKind::Digits:
        for (size_t i = 0; i < n; ++i)
            out.push_back(static_cast<uint8_t>('0' + rng.below(10)));
        break;
      case StreamKind::Amino: {
        const std::string &aa = aminoAlphabet();
        for (size_t i = 0; i < n; ++i)
            out.push_back(static_cast<uint8_t>(aa[rng.below(aa.size())]));
        break;
      }
      case StreamKind::Transactions:
        for (size_t i = 0; i < n; ++i) {
            if (rng.chance(0.08))
                out.push_back(';');
            else
                out.push_back(static_cast<uint8_t>('a' + rng.below(20)));
        }
        break;
      case StreamKind::Dna: {
        static const char bases[] = "ACGT";
        for (size_t i = 0; i < n; ++i)
            out.push_back(static_cast<uint8_t>(bases[rng.below(4)]));
        break;
      }
    }
}

} // namespace

std::vector<uint8_t>
buildInput(const InputSpec &spec, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out;
    out.reserve(bytes + 256);

    const size_t chunk = 4096;
    while (out.size() < bytes) {
        size_t noise = std::min(chunk, bytes - out.size());
        appendNoise(out, spec.kind, noise, rng);
        if (!spec.plantPatterns.empty() && out.size() < bytes) {
            // Poisson-ish planting: plantsPer4k expected witnesses.
            double expect = spec.plantsPer4k;
            while (expect > 0.0) {
                if (rng.uniform() < expect) {
                    const std::string &pat = spec.plantPatterns[rng.below(
                        spec.plantPatterns.size())];
                    std::string w = sampleWitness(pat, rng);
                    for (char c : w)
                        out.push_back(static_cast<uint8_t>(c));
                }
                expect -= 1.0;
            }
        }
    }
    out.resize(bytes);
    return out;
}

size_t
defaultStreamBytes()
{
    const char *full = std::getenv("CA_FULL_INPUT");
    if (full && full[0] == '1')
        return 10u << 20;
    return 1u << 20;
}

} // namespace ca
