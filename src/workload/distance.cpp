#include "workload/distance.h"

#include <vector>

#include "core/error.h"
#include "nfa/classical.h"

namespace ca {

Nfa
hammingNfa(const std::string &pattern, int k, uint32_t report_id,
           bool anchored)
{
    const StartType start_type =
        anchored ? StartType::StartOfData : StartType::AllInput;
    const int m = static_cast<int>(pattern.size());
    CA_FATAL_IF(m == 0, "empty Hamming pattern");
    CA_FATAL_IF(k < 0 || k >= m, "Hamming distance k=" << k
                                                       << " out of range");

    Nfa nfa;
    // match_id[i][e] / mis_id[i][e]: consuming position i with error
    // budget e already spent (after this symbol for mis: e+1).
    std::vector<std::vector<StateId>> match_id(
        m, std::vector<StateId>(k + 1, kInvalidState));
    std::vector<std::vector<StateId>> mis_id(
        m, std::vector<StateId>(k + 1, kInvalidState));

    for (int i = 0; i < m; ++i) {
        SymbolSet sym = SymbolSet::of(static_cast<uint8_t>(pattern[i]));
        SymbolSet mis = ~sym;
        for (int e = 0; e <= k; ++e) {
            // e errors spent *before* consuming position i.
            if (e > i)
                continue; // cannot have spent more errors than symbols
            bool accept = i == m - 1;
            match_id[i][e] = nfa.addState(
                sym, i == 0 ? start_type : StartType::None, accept,
                report_id);
            if (e < k) {
                mis_id[i][e] = nfa.addState(
                    mis, i == 0 ? start_type : StartType::None, accept,
                    report_id);
            }
        }
    }

    for (int i = 0; i + 1 < m; ++i) {
        for (int e = 0; e <= k; ++e) {
            if (e > i)
                continue;
            // After a correct match at (i, e): budget still e.
            if (match_id[i][e] != kInvalidState) {
                if (match_id[i + 1][e] != kInvalidState)
                    nfa.addTransition(match_id[i][e], match_id[i + 1][e]);
                if (e < k && mis_id[i + 1][e] != kInvalidState)
                    nfa.addTransition(match_id[i][e], mis_id[i + 1][e]);
            }
            // After a mismatch at (i, e): budget becomes e + 1.
            if (e < k && mis_id[i][e] != kInvalidState) {
                if (match_id[i + 1][e + 1] != kInvalidState)
                    nfa.addTransition(mis_id[i][e], match_id[i + 1][e + 1]);
                if (e + 1 < k && mis_id[i + 1][e + 1] != kInvalidState)
                    nfa.addTransition(mis_id[i][e], mis_id[i + 1][e + 1]);
            }
        }
    }

    nfa.dedupeEdges();
    return nfa;
}

Nfa
levenshteinNfa(const std::string &pattern, int k, uint32_t report_id,
               bool anchored)
{
    const int m = static_cast<int>(pattern.size());
    CA_FATAL_IF(m == 0, "empty Levenshtein pattern");
    CA_FATAL_IF(k < 0 || k >= m,
                "Levenshtein distance k=" << k << " out of range");

    ClassicalNfa c;
    // Grid state (i, e): i symbols of the pattern consumed, e edits spent.
    std::vector<std::vector<uint32_t>> id(
        m + 1, std::vector<uint32_t>(k + 1));
    for (int i = 0; i <= m; ++i)
        for (int e = 0; e <= k; ++e)
            id[i][e] = c.addState(i == m, report_id);
    c.markStart(id[0][0]);

    SymbolSet any = SymbolSet::all();
    for (int i = 0; i <= m; ++i) {
        for (int e = 0; e <= k; ++e) {
            if (i < m) {
                SymbolSet sym =
                    SymbolSet::of(static_cast<uint8_t>(pattern[i]));
                // Match.
                c.addEdge(id[i][e], id[i + 1][e], sym);
                if (e < k) {
                    // Substitution consumes a wrong symbol.
                    c.addEdge(id[i][e], id[i + 1][e + 1], ~sym);
                    // Deletion skips pattern[i] without consuming input.
                    c.addEpsilon(id[i][e], id[i + 1][e + 1]);
                }
            }
            if (e < k) {
                // Insertion consumes an extra input symbol.
                c.addEdge(id[i][e], id[i][e + 1], any);
            }
        }
    }

    return c.homogenize(anchored);
}

} // namespace ca
