/**
 * @file
 * Input-stream generators for the benchmark suite.
 *
 * Streams are domain-shaped (text, packet payloads, DNA/protein residues,
 * transaction logs, numeric hit streams) and plant genuine rule witnesses
 * at a configurable rate so reporting paths fire. Deterministic in the
 * seed; the evaluation defaults to 1 MB streams (rate metrics are
 * length-independent) with 10 MB available via CA_FULL_INPUT.
 */
#ifndef CA_WORKLOAD_INPUT_GEN_H
#define CA_WORKLOAD_INPUT_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"

namespace ca {

/** Background-noise character distributions. */
enum class StreamKind {
    Text,        ///< Lexicon words separated by spaces.
    Payload,     ///< Printable network-payload bytes.
    Binary,      ///< Uniform random bytes.
    Digits,      ///< '0'..'9'.
    Amino,       ///< 20-letter protein residues.
    Transactions,///< Itemset characters with ';' separators.
    Dna,         ///< ACGT.
};

/** Stream configuration. */
struct InputSpec
{
    StreamKind kind = StreamKind::Payload;
    /** Patterns whose witnesses are planted into the stream. */
    std::vector<std::string> plantPatterns;
    /** Approximate planted matches per 4 KB of stream. */
    double plantsPer4k = 1.0;
};

/** Builds a stream of @p bytes bytes per @p spec, seeded deterministically. */
std::vector<uint8_t> buildInput(const InputSpec &spec, size_t bytes,
                                uint64_t seed);

/** Resolves the evaluation stream size: 1 MB, or 10 MB if CA_FULL_INPUT. */
size_t defaultStreamBytes();

} // namespace ca

#endif // CA_WORKLOAD_INPUT_GEN_H
