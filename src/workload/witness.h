/**
 * @file
 * Witness sampling: generate a random string matching a regex.
 *
 * Input streams for the benchmark suite plant genuine matches at a
 * configurable rate so report paths are exercised end to end; this module
 * draws those witnesses uniformly-ish by walking the pattern AST.
 */
#ifndef CA_WORKLOAD_WITNESS_H
#define CA_WORKLOAD_WITNESS_H

#include <string>

#include "core/rng.h"
#include "nfa/regex_ast.h"

namespace ca {

/**
 * Samples one string matched by @p node.
 *
 * Unbounded repetitions draw geometric lengths (mean ~2 extra copies).
 * The result is guaranteed to be accepted by the pattern's NFA.
 */
std::string sampleWitness(const RegexNode &node, Rng &rng);

/** Parses @p pattern and samples a witness. */
std::string sampleWitness(const std::string &pattern, Rng &rng);

} // namespace ca

#endif // CA_WORKLOAD_WITNESS_H
