/**
 * @file
 * DFA subset construction over homogeneous NFAs.
 *
 * Compute-centric automata engines (the paper's x86 baseline, §6) convert
 * NFAs to DFAs so each input symbol costs one table lookup. We provide the
 * same substrate: DFA states are sets of *enabled* NFA states; reports are
 * edge-attributed (a reporting NFA state fires when it activates, i.e. on
 * the transition that consumes the matching symbol).
 *
 * Subset construction can blow up exponentially on the NFA families used
 * here (the paper's Table-5 discussion); a configurable state cap turns
 * blow-up into a clean CaError instead of an OOM.
 */
#ifndef CA_NFA_DFA_H
#define CA_NFA_DFA_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nfa/nfa.h"

namespace ca {

/** A dense-table DFA with edge-attributed report lists. */
class Dfa
{
  public:
    using DfaStateId = uint32_t;

    static constexpr int kAlphabet = 256;

    /** Transition target for @p state on @p symbol. */
    DfaStateId
    next(DfaStateId state, uint8_t symbol) const
    {
        return trans_[static_cast<size_t>(state) * kAlphabet + symbol];
    }

    /**
     * Report ids fired when consuming @p symbol in @p state, or nullptr
     * when that edge reports nothing (the common case).
     */
    const std::vector<uint32_t> *
    reportsOn(DfaStateId state, uint8_t symbol) const
    {
        auto it = edge_reports_.find(edgeKey(state, symbol));
        return it == edge_reports_.end() ? nullptr
                                         : &report_lists_[it->second];
    }

    DfaStateId startState() const { return 0; }

    size_t numStates() const { return trans_.size() / kAlphabet; }

    /** Bytes of the transition table (the baseline's memory footprint). */
    size_t tableBytes() const { return trans_.size() * sizeof(DfaStateId); }

  private:
    friend Dfa buildDfa(const Nfa &nfa, size_t max_states);

    static uint64_t
    edgeKey(DfaStateId state, uint8_t symbol)
    {
        return (static_cast<uint64_t>(state) << 8) | symbol;
    }

    std::vector<DfaStateId> trans_;
    std::unordered_map<uint64_t, uint32_t> edge_reports_;
    std::vector<std::vector<uint32_t>> report_lists_;
};

/**
 * Determinizes @p nfa.
 * @param max_states cap on DFA states before giving up.
 * @throws CaError when the cap is exceeded.
 */
Dfa buildDfa(const Nfa &nfa, size_t max_states = 1u << 16);

} // namespace ca

#endif // CA_NFA_DFA_H
