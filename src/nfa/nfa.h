/**
 * @file
 * Homogeneous (ANML-style) NFA intermediate representation.
 *
 * Cache Automaton, like Micron's Automata Processor, operates on
 * *homogeneous* NFAs: every state (State Transition Element, STE) carries a
 * single symbol-set label, and all transitions into a state are implicitly
 * guarded by that state's own label. Execution semantics per input symbol:
 *
 *   enabled(0)   = states with start type StartOfData or AllInput
 *   active(t)    = { q in enabled(t) : label(q) contains input[t] }
 *   enabled(t+1) = successors(active(t)) ∪ { q : start(q) == AllInput }
 *
 * Reporting states emit a report (reportId, input offset) whenever they
 * activate. This is exactly the ANML/AP convention the paper assumes, so
 * the compiler, simulator, and baselines all consume this IR directly.
 */
#ifndef CA_NFA_NFA_H
#define CA_NFA_NFA_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/symbol_set.h"

namespace ca {

using StateId = uint32_t;

constexpr StateId kInvalidState = ~StateId{0};

/** When a state is self-enabled, independent of predecessor activity. */
enum class StartType : uint8_t {
    None,        ///< Enabled only by predecessor activation.
    StartOfData, ///< Enabled at offset 0 only (anchored pattern head).
    AllInput,    ///< Enabled at every offset (unanchored pattern head).
};

/** Per-transition weight (score delta), accumulated under a semiring. */
using Weight = int32_t;

/** One STE: a labelled state of a homogeneous NFA. */
struct NfaState
{
    SymbolSet label;
    StartType start = StartType::None;
    bool report = false;
    uint32_t reportId = 0;
    /** Optional symbolic name (preserved through ANML round trips). */
    std::string name;
    /** Successor state ids (activate-on-match targets). */
    std::vector<StateId> out;
    /**
     * Per-edge weights, parallel to @c out. Empty means every edge has
     * weight 0 (the common unscored case pays no storage); otherwise the
     * size must equal out.size() (validate() enforces this).
     */
    std::vector<Weight> outWeight;
    /**
     * Weight of the implicit start-enable "edge" (the cost of this state's
     * own first activation). Only meaningful for start states.
     */
    Weight startWeight = 0;
};

/** Aggregate shape statistics used by Table 1 and the mapping heuristics. */
struct NfaStats
{
    size_t numStates = 0;
    size_t numTransitions = 0;
    size_t numStartStates = 0;
    size_t numReportStates = 0;
    size_t maxFanOut = 0;
    size_t maxFanIn = 0;
    double avgFanOut = 0.0;
};

/**
 * A homogeneous NFA. States are dense ids [0, numStates).
 *
 * Construction is incremental (addState / addTransition); consumers that
 * need predecessor lists call buildReverse() once the shape is final.
 */
class Nfa
{
  public:
    /** Adds a state and returns its id. */
    StateId addState(const SymbolSet &label,
                     StartType start = StartType::None,
                     bool report = false, uint32_t report_id = 0,
                     std::string name = {});

    /**
     * Adds the edge from → to. Duplicates are tolerated transiently for
     * speed; call dedupeEdges() after bulk construction or mutation to
     * normalize (validate() rejects duplicates).
     */
    void addTransition(StateId from, StateId to);

    /** Adds the edge from → to carrying weight @p w (score delta). */
    void addTransition(StateId from, StateId to, Weight w);

    /**
     * Sorts every adjacency list and removes duplicate edges. When two
     * duplicate edges carry different weights, the surviving edge keeps the
     * maximum (duplicates arise only from construction shortcuts; max is
     * the lossless choice under the default max-plus semiring).
     */
    void dedupeEdges();

    /** True if any edge or start carries a nonzero weight. */
    bool hasWeights() const;

    /**
     * Weight of the k-th out-edge of @p id (0 when the automaton carries no
     * weights on that state).
     */
    Weight edgeWeight(StateId id, size_t k) const
    {
        const auto &w = states_[id].outWeight;
        return w.empty() ? 0 : w[k];
    }

    size_t numStates() const { return states_.size(); }

    const NfaState &state(StateId id) const { return states_[id]; }
    NfaState &state(StateId id) { return states_[id]; }

    const std::vector<NfaState> &states() const { return states_; }

    /** Total directed transition count. */
    size_t numTransitions() const;

    /** Ids of all states with a non-None start type. */
    std::vector<StateId> startStates() const;

    /** Ids of all reporting states. */
    std::vector<StateId> reportStates() const;

    /**
     * Predecessor lists; lazily built, invalidated by mutation.
     * @return in-edges of @p id.
     */
    const std::vector<StateId> &predecessors(StateId id) const;

    /** Drops any cached predecessor lists (call after mutating edges). */
    void invalidateReverse();

    NfaStats stats() const;

    /**
     * Structural sanity check: edge targets in range, no duplicate edges,
     * every report state reachable from some start state.
     * @throws CaError describing the first violation.
     */
    void validate() const;

    /**
     * Appends a disjoint copy of @p other, remapping its state ids.
     * @return the id offset added to @p other's states.
     */
    StateId merge(const Nfa &other);

    /**
     * Returns a copy containing only @p keep (order preserved), with edges
     * to dropped states removed and ids compacted.
     */
    Nfa subAutomaton(const std::vector<StateId> &keep) const;

  private:
    void buildReverse() const;

    std::vector<NfaState> states_;
    mutable std::vector<std::vector<StateId>> reverse_;
    mutable bool reverse_valid_ = false;
};

} // namespace ca

#endif // CA_NFA_NFA_H
