#include "nfa/transform.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "telemetry/telemetry.h"

namespace ca {

namespace {

/** Attribute key: states may only ever merge when these all agree. */
uint64_t
attrHash(const NfaState &s)
{
    uint64_t h = s.label.hash();
    uint64_t report_id = s.report ? s.reportId : 0;
    uint64_t seed = h ^ (static_cast<uint64_t>(s.start) << 1) ^
        (static_cast<uint64_t>(s.report) << 2) ^ (report_id << 3);
    return splitmix64(seed);
}

bool
sameAttrs(const NfaState &a, const NfaState &b)
{
    // reportId only matters for reporting states.
    return a.label == b.label && a.start == b.start &&
        a.report == b.report && (!a.report || a.reportId == b.reportId);
}

/**
 * Coarsest bisimulation quotient via partition refinement.
 *
 * backward=true computes backward bisimulation (signatures over
 * predecessor blocks): equivalent states have identical *left* languages,
 * so they are always active together — this is the prefix-merging
 * optimization of §3.1, generalized to handle cycles (e.g. the `[^x]*`
 * gap states shared by SPM rules). backward=false is the dual forward
 * (suffix) variant over successor blocks.
 *
 * Starting from attribute groups, blocks are only ever split, so the
 * refinement converges to the coarsest partition; the quotient automaton
 * preserves the (offset, reportId) report stream exactly.
 */
TransformStats
bisimulationQuotient(Nfa &nfa, bool backward)
{
    TransformStats st;
    st.statesBefore = nfa.numStates();
    const size_t n = nfa.numStates();
    if (n == 0) {
        st.statesAfter = 0;
        return st;
    }

    // Initial blocks: group by attributes (exact, hash only as a bucket).
    std::vector<uint32_t> block(n);
    uint32_t num_blocks = 0;
    {
        std::unordered_map<uint64_t, std::vector<StateId>> buckets;
        for (StateId s = 0; s < n; ++s)
            buckets[attrHash(nfa.state(s))].push_back(s);
        std::vector<char> assigned(n, 0);
        for (auto &[h, members] : buckets) {
            (void)h;
            for (size_t i = 0; i < members.size(); ++i) {
                if (assigned[members[i]])
                    continue;
                uint32_t b = num_blocks++;
                block[members[i]] = b;
                assigned[members[i]] = 1;
                for (size_t j = i + 1; j < members.size(); ++j) {
                    if (!assigned[members[j]] &&
                        sameAttrs(nfa.state(members[i]),
                                  nfa.state(members[j]))) {
                        block[members[j]] = b;
                        assigned[members[j]] = 1;
                    }
                }
            }
        }
    }

    // Adjacency in the refinement direction.
    std::vector<std::vector<StateId>> adj(n);
    if (backward) {
        for (StateId s = 0; s < n; ++s)
            adj[s] = nfa.predecessors(s);
    } else {
        for (StateId s = 0; s < n; ++s)
            adj[s] = nfa.state(s).out;
    }

    // Refine until stable. Signature = sorted set of adjacent block ids.
    std::vector<uint32_t> sig_scratch;
    std::vector<std::vector<uint32_t>> sigs(n);
    while (true) {
        ++st.iterations;
        for (StateId s = 0; s < n; ++s) {
            sig_scratch.clear();
            for (StateId t : adj[s])
                sig_scratch.push_back(block[t]);
            std::sort(sig_scratch.begin(), sig_scratch.end());
            sig_scratch.erase(
                std::unique(sig_scratch.begin(), sig_scratch.end()),
                sig_scratch.end());
            sigs[s] = sig_scratch;
        }

        // Re-block by (old block, signature).
        std::unordered_map<uint64_t, std::vector<StateId>> buckets;
        buckets.reserve(n * 2);
        for (StateId s = 0; s < n; ++s) {
            uint64_t h = block[s];
            for (uint32_t b : sigs[s]) {
                uint64_t seed = h ^ (b + 0x9e3779b97f4a7c15ull);
                h = splitmix64(seed);
            }
            buckets[h].push_back(s);
        }
        std::vector<uint32_t> new_block(n, ~uint32_t{0});
        uint32_t next = 0;
        for (auto &[h, members] : buckets) {
            (void)h;
            for (size_t i = 0; i < members.size(); ++i) {
                StateId a = members[i];
                if (new_block[a] != ~uint32_t{0})
                    continue;
                uint32_t nb = next++;
                new_block[a] = nb;
                for (size_t j = i + 1; j < members.size(); ++j) {
                    StateId b = members[j];
                    if (new_block[b] == ~uint32_t{0} &&
                        block[a] == block[b] && sigs[a] == sigs[b])
                        new_block[b] = nb;
                }
            }
        }
        if (next == num_blocks)
            break; // stable: no block split this round
        num_blocks = next;
        block = std::move(new_block);
    }

    if (num_blocks == n) {
        st.statesAfter = n;
        return st;
    }

    // Quotient construction: one state per block.
    Nfa out;
    std::vector<StateId> rep(num_blocks, kInvalidState);
    std::vector<StateId> new_id(num_blocks, kInvalidState);
    for (StateId s = 0; s < n; ++s) {
        uint32_t b = block[s];
        if (rep[b] == kInvalidState) {
            rep[b] = s;
            const NfaState &src = nfa.state(s);
            new_id[b] = out.addState(src.label, src.start, src.report,
                                     src.report ? src.reportId : 0,
                                     src.name);
        }
    }
    for (StateId s = 0; s < n; ++s)
        for (StateId t : nfa.state(s).out)
            out.addTransition(new_id[block[s]], new_id[block[t]]);
    out.dedupeEdges();
    nfa = std::move(out);

    st.statesAfter = nfa.numStates();
    return st;
}

TransformStats
keepStates(Nfa &nfa, const std::vector<char> &keep)
{
    TransformStats st;
    st.statesBefore = nfa.numStates();
    std::vector<StateId> survivors;
    for (StateId s = 0; s < nfa.numStates(); ++s)
        if (keep[s])
            survivors.push_back(s);
    if (survivors.size() != nfa.numStates())
        nfa = nfa.subAutomaton(survivors);
    st.statesAfter = nfa.numStates();
    st.iterations = 1;
    return st;
}

} // namespace

TransformStats
mergePrefixes(Nfa &nfa)
{
    CA_TRACE_SCOPE("ca.nfa.merge_prefixes");
    if (nfa.hasWeights()) {
        // Bisimulation merging is score-unsafe: two states with identical
        // languages may accumulate different scores, so a quotient would
        // collapse distinct score lattices. Weighted automata keep their
        // full shape.
        TransformStats st;
        st.statesBefore = st.statesAfter = nfa.numStates();
        return st;
    }
    TransformStats stats = bisimulationQuotient(nfa, /*backward=*/true);
    CA_COUNTER_ADD("ca.nfa.prefix_states_merged", stats.removed());
    return stats;
}

TransformStats
mergeSuffixes(Nfa &nfa)
{
    CA_TRACE_SCOPE("ca.nfa.merge_suffixes");
    if (nfa.hasWeights()) {
        TransformStats st;
        st.statesBefore = st.statesAfter = nfa.numStates();
        return st;
    }
    TransformStats stats = bisimulationQuotient(nfa, /*backward=*/false);
    CA_COUNTER_ADD("ca.nfa.suffix_states_merged", stats.removed());
    return stats;
}

TransformStats
removeUnreachable(Nfa &nfa)
{
    const size_t n = nfa.numStates();
    std::vector<char> reach(n, 0);
    std::vector<StateId> stack;
    for (StateId s = 0; s < n; ++s) {
        if (nfa.state(s).start != StartType::None) {
            reach[s] = 1;
            stack.push_back(s);
        }
    }
    while (!stack.empty()) {
        StateId cur = stack.back();
        stack.pop_back();
        for (StateId t : nfa.state(cur).out) {
            if (!reach[t]) {
                reach[t] = 1;
                stack.push_back(t);
            }
        }
    }
    return keepStates(nfa, reach);
}

TransformStats
removeDead(Nfa &nfa)
{
    const size_t n = nfa.numStates();
    std::vector<char> live(n, 0);
    std::vector<StateId> stack;
    for (StateId s = 0; s < n; ++s) {
        if (nfa.state(s).report) {
            live[s] = 1;
            stack.push_back(s);
        }
    }
    if (stack.empty()) {
        // No reports at all: nothing meaningful to prune against.
        TransformStats st;
        st.statesBefore = st.statesAfter = n;
        return st;
    }
    while (!stack.empty()) {
        StateId cur = stack.back();
        stack.pop_back();
        for (StateId p : nfa.predecessors(cur)) {
            if (!live[p]) {
                live[p] = 1;
                stack.push_back(p);
            }
        }
    }
    return keepStates(nfa, live);
}

TransformStats
optimizeForSpace(Nfa &nfa)
{
    CA_TRACE_SCOPE("ca.nfa.optimize_space");
    TransformStats total;
    total.statesBefore = nfa.numStates();
    removeUnreachable(nfa);
    removeDead(nfa);
    TransformStats p = mergePrefixes(nfa);
    TransformStats s = mergeSuffixes(nfa);
    total.statesAfter = nfa.numStates();
    total.iterations = p.iterations + s.iterations;
    CA_COUNTER_ADD("ca.nfa.space_passes", 1);
    CA_COUNTER_ADD("ca.nfa.states_removed", total.removed());
    return total;
}

} // namespace ca
