/**
 * @file
 * Regular-expression abstract syntax tree.
 *
 * The front end of the Cache Automaton compiler: regex rulesets (Snort-like
 * signatures, ClamAV strings, the Regex suite's dotstar/ranges/exact-match
 * families) parse into this AST, which the Glushkov construction then lowers
 * directly to a homogeneous NFA.
 */
#ifndef CA_NFA_REGEX_AST_H
#define CA_NFA_REGEX_AST_H

#include <memory>
#include <string>
#include <vector>

#include "core/symbol_set.h"

namespace ca {

/** AST node kinds. */
enum class RegexOp : uint8_t {
    Empty,   ///< Matches the empty string (epsilon).
    Class,   ///< A symbol-set leaf (literal char, ., [..], escapes).
    Concat,  ///< Sequence of children.
    Alt,     ///< Alternation of children.
    Star,    ///< Zero or more of child.
    Plus,    ///< One or more of child.
    Opt,     ///< Zero or one of child.
    Repeat,  ///< Bounded repetition child{min,max}; max==kUnbounded => open.
};

struct RegexNode;
using RegexNodePtr = std::unique_ptr<RegexNode>;

/** One regex AST node. Tree ownership is by unique_ptr. */
struct RegexNode
{
    static constexpr int kUnbounded = -1;

    RegexOp op = RegexOp::Empty;
    SymbolSet cls;                      ///< Valid when op == Class.
    std::vector<RegexNodePtr> children; ///< Concat/Alt: 2+; unary ops: 1.
    int repeatMin = 0;                  ///< Valid when op == Repeat.
    int repeatMax = 0;                  ///< Valid when op == Repeat.

    static RegexNodePtr empty();
    static RegexNodePtr symbolClass(const SymbolSet &s);
    static RegexNodePtr concat(std::vector<RegexNodePtr> kids);
    static RegexNodePtr alt(std::vector<RegexNodePtr> kids);
    static RegexNodePtr star(RegexNodePtr kid);
    static RegexNodePtr plus(RegexNodePtr kid);
    static RegexNodePtr opt(RegexNodePtr kid);
    static RegexNodePtr repeat(RegexNodePtr kid, int min, int max);

    /** Deep copy (needed to expand {m,n} repetitions). */
    RegexNodePtr clone() const;

    /** Number of Class leaves (Glushkov positions) in the subtree. */
    size_t countPositions() const;

    /** Re-renders a normalized regex string; for diagnostics and tests. */
    std::string toString() const;
};

/** A parsed pattern: the AST plus anchoring flags. */
struct RegexPattern
{
    RegexNodePtr root;
    bool anchoredStart = false; ///< '^' at pattern head (StartOfData).
    bool anchoredEnd = false;   ///< '$' at pattern tail (match at EOF only).
    std::string source;         ///< Original pattern text.
};

} // namespace ca

#endif // CA_NFA_REGEX_AST_H
