/**
 * @file
 * Classical (edge-labelled) NFA and its conversion to the homogeneous
 * ANML form (§2.1).
 *
 * Classical NFAs label *transitions* with symbol sets and may contain
 * epsilon transitions; the AP/Cache-Automaton model labels *states*. The
 * standard transformation creates one homogeneous state per (classical
 * state, incoming symbol class) pair after epsilon elimination — this is
 * the algorithm family the paper cites for producing ANML NFAs. Used by
 * the Levenshtein workload generator and available as public API for
 * importing classical automata.
 */
#ifndef CA_NFA_CLASSICAL_H
#define CA_NFA_CLASSICAL_H

#include <cstdint>
#include <vector>

#include "core/symbol_set.h"
#include "nfa/nfa.h"

namespace ca {

/** A classical NFA with symbol-set edge labels and epsilon transitions. */
class ClassicalNfa
{
  public:
    struct Edge
    {
        uint32_t to = 0;
        SymbolSet label;
    };

    /** Adds a state; @p accepting states report @p report_id. */
    uint32_t addState(bool accepting = false, uint32_t report_id = 0);

    /** Adds a labelled transition. */
    void addEdge(uint32_t from, uint32_t to, const SymbolSet &label);

    /** Adds an epsilon transition. */
    void addEpsilon(uint32_t from, uint32_t to);

    void markStart(uint32_t state) { start_.push_back(state); }

    size_t numStates() const { return accepting_.size(); }
    const std::vector<Edge> &edges(uint32_t s) const { return edges_[s]; }
    const std::vector<uint32_t> &epsilons(uint32_t s) const
    {
        return eps_[s];
    }
    bool accepting(uint32_t s) const { return accepting_[s]; }
    const std::vector<uint32_t> &startStates() const { return start_; }

    /**
     * Converts to a homogeneous NFA.
     *
     * @param anchored  StartOfData start states when true (matching begins
     *                  only at offset 0), AllInput otherwise.
     *
     * Epsilon transitions are eliminated by closure first; acceptance via
     * pure-epsilon paths from a start state (empty-string acceptance) is
     * not representable and throws CaError.
     */
    Nfa homogenize(bool anchored = true) const;

  private:
    std::vector<std::vector<Edge>> edges_;
    std::vector<std::vector<uint32_t>> eps_;
    std::vector<char> accepting_;
    std::vector<uint32_t> report_id_;
    std::vector<uint32_t> start_;
};

} // namespace ca

#endif // CA_NFA_CLASSICAL_H
