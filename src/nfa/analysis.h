/**
 * @file
 * Structural analyses over homogeneous NFAs.
 *
 * Connected components are the compiler's atomic mapping unit (§3.1 of the
 * paper): states within a CC need rich connectivity, distinct CCs none at
 * all. This module computes CCs (over the undirected transition graph),
 * their size distribution, and per-benchmark shape summaries (Table 1).
 */
#ifndef CA_NFA_ANALYSIS_H
#define CA_NFA_ANALYSIS_H

#include <cstddef>
#include <vector>

#include "nfa/nfa.h"

namespace ca {

/** Connected-component decomposition of an NFA. */
struct ComponentInfo
{
    /** component[s] = index of the CC containing state s. */
    std::vector<uint32_t> component;
    /** members[c] = state ids in CC c, ascending. */
    std::vector<std::vector<StateId>> members;

    size_t numComponents() const { return members.size(); }

    /** Size of the largest component. */
    size_t largestSize() const;
};

/** Computes connected components over the undirected edge relation. */
ComponentInfo connectedComponents(const Nfa &nfa);

/**
 * Average static reachability: mean over states of |states reachable by
 * following transitions forward| (the paper's Figure 10 "reachability" is
 * an architectural bound; this is the NFA-side demand metric used by tests).
 */
double averageReachableSet(const Nfa &nfa, size_t sample_limit = 512);

/** Per-state forward-reachable set size (BFS from @p src). */
size_t reachableCount(const Nfa &nfa, StateId src);

} // namespace ca

#endif // CA_NFA_ANALYSIS_H
