#include "nfa/classical.h"

#include <algorithm>
#include <map>
#include <queue>

#include "core/error.h"

namespace ca {

uint32_t
ClassicalNfa::addState(bool accepting, uint32_t report_id)
{
    edges_.emplace_back();
    eps_.emplace_back();
    accepting_.push_back(accepting ? 1 : 0);
    report_id_.push_back(report_id);
    return static_cast<uint32_t>(accepting_.size() - 1);
}

void
ClassicalNfa::addEdge(uint32_t from, uint32_t to, const SymbolSet &label)
{
    CA_ASSERT(from < numStates() && to < numStates());
    CA_FATAL_IF(label.empty(), "classical edge with empty label");
    edges_[from].push_back(Edge{to, label});
}

void
ClassicalNfa::addEpsilon(uint32_t from, uint32_t to)
{
    CA_ASSERT(from < numStates() && to < numStates());
    eps_[from].push_back(to);
}

namespace {

/** Epsilon closure (including @p s itself) via BFS. */
std::vector<uint32_t>
closure(const ClassicalNfa &nfa, uint32_t s)
{
    std::vector<uint32_t> out{s};
    std::vector<char> seen(nfa.numStates(), 0);
    seen[s] = 1;
    for (size_t i = 0; i < out.size(); ++i)
        for (uint32_t t : nfa.epsilons(out[i]))
            if (!seen[t]) {
                seen[t] = 1;
                out.push_back(t);
            }
    return out;
}

} // namespace

Nfa
ClassicalNfa::homogenize(bool anchored) const
{
    const uint32_t n = static_cast<uint32_t>(numStates());

    // Precompute closures once.
    std::vector<std::vector<uint32_t>> cls(n);
    for (uint32_t s = 0; s < n; ++s)
        cls[s] = closure(*this, s);

    // Epsilon-free edge relation: q --alpha--> r expands so r covers the
    // closure of the original target; acceptance propagates backwards
    // through closures (accept if any closure member accepts).
    std::vector<char> acc(n, 0);
    std::vector<uint32_t> acc_report(n, 0);
    for (uint32_t s = 0; s < n; ++s) {
        for (uint32_t t : cls[s]) {
            if (accepting_[t]) {
                acc[s] = 1;
                acc_report[s] = report_id_[t];
                break;
            }
        }
    }

    for (uint32_t s : start_) {
        CA_FATAL_IF(acc[s],
                    "classical NFA accepts the empty string; homogeneous "
                    "automata cannot report at offset -1");
    }

    // Homogeneous state per (classical target, incoming symbol class).
    // Identical labels into the same target share one STE; distinct
    // incoming labels per state are few (match/substitute/insert classes),
    // so a per-target linear scan suffices.
    std::vector<std::vector<StateId>> target_stes(n);
    std::vector<std::pair<uint32_t, SymbolSet>> ste_info;
    Nfa out;

    auto internSte = [&](uint32_t target,
                         const SymbolSet &label) -> StateId {
        for (StateId id : target_stes[target])
            if (ste_info[id].second == label)
                return id;
        StateId id = out.addState(label, StartType::None, acc[target] != 0,
                                  acc_report[target]);
        target_stes[target].push_back(id);
        ste_info.emplace_back(target, label);
        return id;
    };

    // Create STEs for every epsilon-expanded edge endpoint.
    // expanded edges: for q, for edge (t, alpha): for r in closure(t):
    //   STE(r, alpha)
    struct ExpEdge
    {
        uint32_t from;
        uint32_t to;
        SymbolSet label;
    };
    std::vector<ExpEdge> exp;
    for (uint32_t q = 0; q < n; ++q)
        for (const Edge &e : edges_[q])
            for (uint32_t r : cls[e.to])
                exp.push_back(ExpEdge{q, r, e.label});

    for (const ExpEdge &e : exp)
        internSte(e.to, e.label);

    // Transitions between STEs: STE(q, a) -> STE(r, b) iff expanded edge
    // q --b--> r exists. Group expanded edges by source for the scan.
    std::vector<std::vector<size_t>> by_source(n);
    for (size_t i = 0; i < exp.size(); ++i)
        by_source[exp[i].from].push_back(i);

    for (StateId ste = 0; ste < out.numStates(); ++ste) {
        uint32_t q = ste_info[ste].first;
        for (size_t ei : by_source[q]) {
            StateId dst = internSte(exp[ei].to, exp[ei].label);
            out.addTransition(ste, dst);
        }
    }

    // Start states: expanded edges whose source is in the closure of a
    // classical start state become start STEs.
    std::vector<char> is_start_src(n, 0);
    for (uint32_t s : start_)
        for (uint32_t t : cls[s])
            is_start_src[t] = 1;
    StartType start_type =
        anchored ? StartType::StartOfData : StartType::AllInput;
    for (uint32_t q = 0; q < n; ++q) {
        if (!is_start_src[q])
            continue;
        for (size_t ei : by_source[q])
            out.state(internSte(exp[ei].to, exp[ei].label)).start =
                start_type;
    }

    out.dedupeEdges();
    return out;
}

} // namespace ca
