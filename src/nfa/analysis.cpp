#include "nfa/analysis.h"

#include <algorithm>
#include <numeric>

#include "core/error.h"
#include "telemetry/telemetry.h"

namespace ca {

size_t
ComponentInfo::largestSize() const
{
    size_t best = 0;
    for (const auto &m : members)
        best = std::max(best, m.size());
    return best;
}

ComponentInfo
connectedComponents(const Nfa &nfa)
{
    CA_TRACE_SCOPE("ca.partition.cc_analysis");
    const size_t n = nfa.numStates();
    ComponentInfo info;
    info.component.assign(n, ~uint32_t{0});

    // Union-find with path halving keeps this near-linear even for the
    // 100K-state benchmarks.
    std::vector<uint32_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](uint32_t a, uint32_t b) {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[b] = a;
    };

    for (StateId s = 0; s < n; ++s)
        for (StateId t : nfa.state(s).out)
            unite(s, t);

    // Compact root ids to dense component indices in first-seen order.
    std::vector<uint32_t> root_to_comp(n, ~uint32_t{0});
    for (StateId s = 0; s < n; ++s) {
        uint32_t r = find(s);
        if (root_to_comp[r] == ~uint32_t{0}) {
            root_to_comp[r] = static_cast<uint32_t>(info.members.size());
            info.members.emplace_back();
        }
        uint32_t c = root_to_comp[r];
        info.component[s] = c;
        info.members[c].push_back(s);
    }
    return info;
}

size_t
reachableCount(const Nfa &nfa, StateId src)
{
    CA_ASSERT(src < nfa.numStates());
    std::vector<char> seen(nfa.numStates(), 0);
    std::vector<StateId> stack{src};
    seen[src] = 1;
    size_t count = 0;
    while (!stack.empty()) {
        StateId cur = stack.back();
        stack.pop_back();
        ++count;
        for (StateId t : nfa.state(cur).out) {
            if (!seen[t]) {
                seen[t] = 1;
                stack.push_back(t);
            }
        }
    }
    return count;
}

double
averageReachableSet(const Nfa &nfa, size_t sample_limit)
{
    const size_t n = nfa.numStates();
    if (n == 0)
        return 0.0;
    size_t stride = std::max<size_t>(1, n / sample_limit);
    double total = 0.0;
    size_t samples = 0;
    for (StateId s = 0; s < n; s += stride) {
        total += static_cast<double>(reachableCount(nfa, s));
        ++samples;
    }
    return total / static_cast<double>(samples);
}

} // namespace ca
