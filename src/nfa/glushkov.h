/**
 * @file
 * Glushkov (position-automaton) construction: regex AST → homogeneous NFA.
 *
 * The position automaton has exactly one state per Class leaf of the AST,
 * each labelled by that leaf's symbol set — i.e. it is homogeneous by
 * construction and maps 1:1 onto ANML STEs with no epsilon-removal pass.
 * This is the standard pipeline for compiling rulesets to the Automata
 * Processor and is what the Cache Automaton compiler consumes.
 *
 * Unanchored patterns ('^' absent) get AllInput start states so matching
 * begins at every input offset, matching AP scan semantics. Bounded
 * repetitions are expanded structurally before position numbering.
 */
#ifndef CA_NFA_GLUSHKOV_H
#define CA_NFA_GLUSHKOV_H

#include <cstdint>
#include <string>
#include <vector>

#include "nfa/nfa.h"
#include "nfa/regex_ast.h"

namespace ca {

/** Options controlling regex → NFA lowering. */
struct GlushkovOptions
{
    /** Report id attached to this pattern's accepting states. */
    uint32_t reportId = 0;
    /**
     * Hard cap on positions after {m,n} expansion; protects against
     * pathological rulesets. Exceeding it throws CaError.
     */
    size_t maxPositions = 1u << 20;
    /**
     * Case-insensitive matching (Snort's "nocase"): every position's
     * label is closed over ASCII case before the NFA is built.
     */
    bool caseInsensitive = false;
};

/**
 * Lowers one parsed pattern to a homogeneous NFA fragment.
 *
 * @throws CaError if the pattern matches the empty string (no homogeneous
 * automaton can report at offset -1) or exceeds maxPositions.
 */
Nfa buildGlushkov(const RegexPattern &pattern, const GlushkovOptions &opts);

/**
 * Compiles a whole ruleset: parses each pattern, lowers it with reportId =
 * its index, and merges the fragments into one multi-pattern automaton
 * (one connected component per pattern, as in the ANMLZoo benchmarks).
 */
Nfa compileRuleset(const std::vector<std::string> &patterns,
                   size_t maxPositions = 1u << 20,
                   bool caseInsensitive = false);

} // namespace ca

#endif // CA_NFA_GLUSHKOV_H
