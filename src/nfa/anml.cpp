#include "nfa/anml.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/error.h"
#include "telemetry/telemetry.h"
#include "core/string_utils.h"

namespace ca {

namespace {

/** One parsed XML tag: name, attributes, open/close/self-closing kind. */
struct XmlTag
{
    enum Kind { Open, Close, SelfClose, Decl } kind = Open;
    std::string name;
    std::vector<std::pair<std::string, std::string>> attrs;

    const std::string *
    attr(const std::string &key) const
    {
        for (const auto &[k, v] : attrs)
            if (k == key)
                return &v;
        return nullptr;
    }
};

std::string
xmlUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    size_t i = 0;
    while (i < s.size()) {
        if (s[i] != '&') {
            out.push_back(s[i++]);
            continue;
        }
        size_t semi = s.find(';', i);
        CA_FATAL_IF(semi == std::string::npos,
                    "unterminated XML entity in '" << s << "'");
        std::string ent = s.substr(i + 1, semi - i - 1);
        if (ent == "amp") out.push_back('&');
        else if (ent == "lt") out.push_back('<');
        else if (ent == "gt") out.push_back('>');
        else if (ent == "quot") out.push_back('"');
        else if (ent == "apos") out.push_back('\'');
        else if (!ent.empty() && ent[0] == '#') {
            int v = -1;
            try {
                v = ent.size() > 1 && ent[1] == 'x'
                    ? std::stoi(ent.substr(2), nullptr, 16)
                    : std::stoi(ent.substr(1));
            } catch (const std::exception &) {
                CA_THROW("malformed character reference &" << ent << ";");
            }
            CA_FATAL_IF(v < 0 || v > 255,
                        "character reference &" << ent << "; out of range");
            out.push_back(static_cast<char>(v));
        } else {
            CA_THROW("unknown XML entity &" << ent << ";");
        }
        i = semi + 1;
    }
    return out;
}

/** Minimal forward-only tag scanner; text nodes and comments are skipped. */
class XmlScanner
{
  public:
    explicit XmlScanner(const std::string &text) : text_(text) {}

    /** Returns false at end of input; otherwise fills @p tag. */
    bool
    next(XmlTag &tag)
    {
        while (true) {
            size_t lt = text_.find('<', pos_);
            if (lt == std::string::npos)
                return false;
            // Comments and processing instructions are skipped whole.
            if (text_.compare(lt, 4, "<!--") == 0) {
                size_t end = text_.find("-->", lt);
                CA_FATAL_IF(end == std::string::npos,
                            "unterminated XML comment");
                pos_ = end + 3;
                continue;
            }
            size_t gt = text_.find('>', lt);
            CA_FATAL_IF(gt == std::string::npos, "unterminated XML tag");
            parseTag(text_.substr(lt + 1, gt - lt - 1), tag);
            pos_ = gt + 1;
            return true;
        }
    }

  private:
    void
    parseTag(std::string body, XmlTag &tag)
    {
        tag.attrs.clear();
        tag.kind = XmlTag::Open;
        body = trim(body);
        CA_FATAL_IF(body.empty(), "empty XML tag");
        if (body[0] == '?' || body[0] == '!') {
            tag.kind = XmlTag::Decl;
            tag.name = body;
            return;
        }
        if (body[0] == '/') {
            tag.kind = XmlTag::Close;
            tag.name = trim(body.substr(1));
            return;
        }
        if (body.back() == '/') {
            tag.kind = XmlTag::SelfClose;
            body = trim(body.substr(0, body.size() - 1));
        }
        size_t i = 0;
        while (i < body.size() && !std::isspace(
                   static_cast<unsigned char>(body[i])))
            ++i;
        tag.name = body.substr(0, i);
        // Attribute list: key="value" pairs.
        while (i < body.size()) {
            while (i < body.size() && std::isspace(
                       static_cast<unsigned char>(body[i])))
                ++i;
            if (i >= body.size())
                break;
            size_t eq = body.find('=', i);
            CA_FATAL_IF(eq == std::string::npos,
                        "malformed attribute in <" << tag.name << ">");
            std::string key = trim(body.substr(i, eq - i));
            size_t q1 = body.find_first_of("\"'", eq);
            CA_FATAL_IF(q1 == std::string::npos,
                        "unquoted attribute value in <" << tag.name << ">");
            char quote = body[q1];
            size_t q2 = body.find(quote, q1 + 1);
            CA_FATAL_IF(q2 == std::string::npos,
                        "unterminated attribute value in <" << tag.name
                                                            << ">");
            tag.attrs.emplace_back(
                key, xmlUnescape(body.substr(q1 + 1, q2 - q1 - 1)));
            i = q2 + 1;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

SymbolSet
parseAnmlSymbolSet(const std::string &spec)
{
    if (spec == "*")
        return SymbolSet::all();
    CA_FATAL_IF(spec.size() < 2 || spec.front() != '[' || spec.back() != ']',
                "symbol-set '" << spec << "' is not a bracket expression");
    return SymbolSet::parseClass(spec.substr(1, spec.size() - 2));
}

StartType
parseStartAttr(const std::string &v)
{
    if (v == "all-input")
        return StartType::AllInput;
    if (v == "start-of-data")
        return StartType::StartOfData;
    if (v == "none" || v.empty())
        return StartType::None;
    CA_THROW("unknown start type '" << v << "'");
}

} // namespace

Nfa
parseAnml(const std::string &text)
{
    CA_TRACE_SCOPE("ca.nfa.anml_parse");
    XmlScanner scanner(text);
    XmlTag tag;

    Nfa nfa;
    std::unordered_map<std::string, StateId> ids;
    // Edges are resolved after all STEs exist (forward references legal).
    std::vector<std::pair<StateId, std::string>> pending_edges;
    StateId current = kInvalidState;

    while (scanner.next(tag)) {
        if (tag.kind == XmlTag::Decl)
            continue;
        if (tag.name == "state-transition-element") {
            if (tag.kind == XmlTag::Close) {
                current = kInvalidState;
                continue;
            }
            const std::string *id = tag.attr("id");
            CA_FATAL_IF(!id, "<state-transition-element> missing id");
            const std::string *symbol = tag.attr("symbol-set");
            CA_FATAL_IF(!symbol, "STE '" << *id << "' missing symbol-set");
            StartType start = StartType::None;
            if (const std::string *s = tag.attr("start"))
                start = parseStartAttr(*s);
            CA_FATAL_IF(ids.count(*id), "duplicate STE id '" << *id << "'");
            StateId sid = nfa.addState(parseAnmlSymbolSet(*symbol), start,
                                       false, 0, *id);
            ids[*id] = sid;
            if (tag.kind == XmlTag::Open)
                current = sid;
        } else if (tag.name == "activate-on-match") {
            CA_FATAL_IF(current == kInvalidState,
                        "<activate-on-match> outside an STE");
            const std::string *el = tag.attr("element");
            CA_FATAL_IF(!el, "<activate-on-match> missing element");
            pending_edges.emplace_back(current, *el);
        } else if (tag.name == "report-on-match") {
            CA_FATAL_IF(current == kInvalidState,
                        "<report-on-match> outside an STE");
            nfa.state(current).report = true;
            if (const std::string *rc = tag.attr("reportcode")) {
                try {
                    nfa.state(current).reportId =
                        static_cast<uint32_t>(std::stoul(*rc));
                } catch (const std::exception &) {
                    CA_THROW("malformed reportcode '" << *rc << "'");
                }
            }
        }
        // Other tags (<anml>, <automata-network>, <description>...) skipped.
    }

    for (const auto &[from, target] : pending_edges) {
        auto it = ids.find(target);
        CA_FATAL_IF(it == ids.end(),
                    "activate-on-match references unknown STE '" << target
                                                                 << "'");
        nfa.addTransition(from, it->second);
    }
    nfa.dedupeEdges();
    return nfa;
}

Nfa
loadAnmlFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    CA_FATAL_IF(!in, "cannot open ANML file '" << path << "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseAnml(buf.str());
}

std::string
writeAnml(const Nfa &nfa, const std::string &network_id)
{
    std::ostringstream os;
    os << "<anml version=\"1.0\">\n";
    os << "<automata-network id=\"" << xmlEscape(network_id) << "\">\n";
    for (StateId i = 0; i < nfa.numStates(); ++i) {
        const NfaState &s = nfa.state(i);
        std::string id = s.name.empty() ? "ste" + std::to_string(i) : s.name;
        os << "  <state-transition-element id=\"" << xmlEscape(id)
           << "\" symbol-set=\""
           << xmlEscape(s.label.isAll() ? "*" : s.label.toString()) << "\"";
        if (s.start == StartType::AllInput)
            os << " start=\"all-input\"";
        else if (s.start == StartType::StartOfData)
            os << " start=\"start-of-data\"";
        if (s.out.empty() && !s.report) {
            os << "/>\n";
            continue;
        }
        os << ">\n";
        for (StateId t : s.out) {
            const NfaState &ts = nfa.state(t);
            std::string tid =
                ts.name.empty() ? "ste" + std::to_string(t) : ts.name;
            os << "    <activate-on-match element=\"" << xmlEscape(tid)
               << "\"/>\n";
        }
        if (s.report)
            os << "    <report-on-match reportcode=\"" << s.reportId
               << "\"/>\n";
        os << "  </state-transition-element>\n";
    }
    os << "</automata-network>\n</anml>\n";
    return os.str();
}

void
saveAnmlFile(const Nfa &nfa, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    CA_FATAL_IF(!out, "cannot write ANML file '" << path << "'");
    out << writeAnml(nfa);
    CA_FATAL_IF(!out, "I/O error writing '" << path << "'");
}

} // namespace ca
