#include "nfa/regex_parser.h"

#include <cctype>

#include "core/error.h"
#include "telemetry/telemetry.h"

namespace ca {

namespace {

/**
 * Classic recursive-descent regex parser.
 *
 * Grammar:
 *   pattern := '^'? alt '$'?
 *   alt     := concat ('|' concat)*
 *   concat  := repeat*
 *   repeat  := atom ('*' | '+' | '?' | '{' bounds '}')*
 *   atom    := '(' alt ')' | '[' class ']' | '.' | escape | literal
 */
class Parser
{
  public:
    explicit Parser(const std::string &src) : src_(src) {}

    RegexPattern
    parse()
    {
        RegexPattern pat;
        pat.source = src_;
        if (peek() == '^') {
            pat.anchoredStart = true;
            ++pos_;
        }
        pat.root = parseAlt();
        if (peek() == '$') {
            pat.anchoredEnd = true;
            ++pos_;
        }
        CA_FATAL_IF(pos_ != src_.size(),
                    "unexpected '" << src_[pos_] << "' at offset " << pos_
                                   << " in /" << src_ << "/");
        return pat;
    }

  private:
    int peek() const { return pos_ < src_.size() ? src_[pos_] : -1; }

    char
    consume()
    {
        CA_FATAL_IF(pos_ >= src_.size(),
                    "unexpected end of pattern /" << src_ << "/");
        return src_[pos_++];
    }

    RegexNodePtr
    parseAlt()
    {
        std::vector<RegexNodePtr> branches;
        branches.push_back(parseConcat());
        while (peek() == '|') {
            ++pos_;
            branches.push_back(parseConcat());
        }
        return RegexNode::alt(std::move(branches));
    }

    RegexNodePtr
    parseConcat()
    {
        std::vector<RegexNodePtr> parts;
        while (true) {
            int c = peek();
            if (c == -1 || c == '|' || c == ')')
                break;
            if (c == '$' && pos_ == src_.size() - 1)
                break; // trailing anchor handled by parse()
            parts.push_back(parseRepeat());
        }
        return RegexNode::concat(std::move(parts));
    }

    RegexNodePtr
    parseRepeat()
    {
        RegexNodePtr node = parseAtom();
        while (true) {
            int c = peek();
            if (c == '*') {
                ++pos_;
                node = RegexNode::star(std::move(node));
            } else if (c == '+') {
                ++pos_;
                node = RegexNode::plus(std::move(node));
            } else if (c == '?') {
                ++pos_;
                node = RegexNode::opt(std::move(node));
            } else if (c == '{') {
                node = parseBounds(std::move(node));
            } else {
                break;
            }
        }
        return node;
    }

    RegexNodePtr
    parseBounds(RegexNodePtr node)
    {
        size_t open = pos_;
        ++pos_; // '{'
        CA_FATAL_IF(!std::isdigit(peek()),
                    "expected digit after '{' at offset " << open << " in /"
                                                          << src_ << "/");
        int min = parseInt();
        int max = min;
        if (peek() == ',') {
            ++pos_;
            if (peek() == '}') {
                max = RegexNode::kUnbounded;
            } else {
                CA_FATAL_IF(!std::isdigit(peek()),
                            "expected digit or '}' in bounds at offset "
                                << pos_ << " in /" << src_ << "/");
                max = parseInt();
            }
        }
        CA_FATAL_IF(peek() != '}',
                    "unterminated '{' at offset " << open << " in /" << src_
                                                  << "/");
        ++pos_;
        return RegexNode::repeat(std::move(node), min, max);
    }

    int
    parseInt()
    {
        int v = 0;
        while (std::isdigit(peek())) {
            v = v * 10 + (consume() - '0');
            CA_FATAL_IF(v > 100000, "repetition bound too large in /"
                                        << src_ << "/");
        }
        return v;
    }

    RegexNodePtr
    parseAtom()
    {
        int c = peek();
        switch (c) {
          case '(': {
            size_t open = pos_;
            ++pos_;
            // Swallow non-capturing group markers "(?:".
            if (peek() == '?' && pos_ + 1 < src_.size() &&
                src_[pos_ + 1] == ':')
                pos_ += 2;
            RegexNodePtr inner = parseAlt();
            CA_FATAL_IF(peek() != ')', "unbalanced '(' at offset "
                                           << open << " in /" << src_
                                           << "/");
            ++pos_;
            return inner;
          }
          case '[':
            return parseClass();
          case '.':
            ++pos_;
            return RegexNode::symbolClass(SymbolSet::all());
          case '\\': {
            ++pos_;
            CA_FATAL_IF(pos_ >= src_.size(),
                        "dangling '\\' in /" << src_ << "/");
            std::string body = "\\";
            body.push_back(consume());
            if (body[1] == 'x') {
                CA_FATAL_IF(pos_ + 1 >= src_.size(),
                            "truncated \\x escape in /" << src_ << "/");
                body.push_back(consume());
                body.push_back(consume());
            }
            return RegexNode::symbolClass(SymbolSet::parseClass(body));
          }
          case '*': case '+': case '?': case '{':
            CA_THROW("quantifier '" << static_cast<char>(c)
                                    << "' with nothing to repeat at offset "
                                    << pos_ << " in /" << src_ << "/");
          case -1:
            CA_THROW("unexpected end of pattern /" << src_ << "/");
          default:
            ++pos_;
            return RegexNode::symbolClass(
                SymbolSet::of(static_cast<uint8_t>(c)));
        }
    }

    RegexNodePtr
    parseClass()
    {
        size_t open = pos_;
        ++pos_; // '['
        std::string body;
        while (true) {
            int c = peek();
            CA_FATAL_IF(c == -1, "unterminated '[' at offset "
                                     << open << " in /" << src_ << "/");
            // ']' terminates unless it is the first member (POSIX treats a
            // leading ']', including right after '^', as a literal).
            if (c == ']' && !body.empty() && body != "^")
                break;
            if (c == ']') {
                body.push_back(']');
                ++pos_;
                continue;
            }
            if (c == '\\') {
                body.push_back(static_cast<char>(consume()));
                CA_FATAL_IF(peek() == -1, "dangling escape in class in /"
                                              << src_ << "/");
                char e = consume();
                body.push_back(e);
                if (e == 'x') {
                    CA_FATAL_IF(pos_ + 1 >= src_.size(),
                                "truncated \\x escape in /" << src_ << "/");
                    body.push_back(consume());
                    body.push_back(consume());
                }
            } else {
                body.push_back(static_cast<char>(consume()));
            }
        }
        ++pos_; // ']'
        return RegexNode::symbolClass(SymbolSet::parseClass(body));
    }

    const std::string &src_;
    size_t pos_ = 0;
};

} // namespace

RegexPattern
parseRegex(const std::string &pattern)
{
    CA_COUNTER_ADD("ca.nfa.regex_parsed", 1);
    return Parser(pattern).parse();
}

} // namespace ca
