#include "nfa/regex_ast.h"

#include <sstream>

#include "core/error.h"

namespace ca {

RegexNodePtr
RegexNode::empty()
{
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Empty;
    return n;
}

RegexNodePtr
RegexNode::symbolClass(const SymbolSet &s)
{
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Class;
    n->cls = s;
    return n;
}

RegexNodePtr
RegexNode::concat(std::vector<RegexNodePtr> kids)
{
    if (kids.empty())
        return empty();
    if (kids.size() == 1)
        return std::move(kids[0]);
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Concat;
    n->children = std::move(kids);
    return n;
}

RegexNodePtr
RegexNode::alt(std::vector<RegexNodePtr> kids)
{
    CA_ASSERT(!kids.empty());
    if (kids.size() == 1)
        return std::move(kids[0]);
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Alt;
    n->children = std::move(kids);
    return n;
}

RegexNodePtr
RegexNode::star(RegexNodePtr kid)
{
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Star;
    n->children.push_back(std::move(kid));
    return n;
}

RegexNodePtr
RegexNode::plus(RegexNodePtr kid)
{
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Plus;
    n->children.push_back(std::move(kid));
    return n;
}

RegexNodePtr
RegexNode::opt(RegexNodePtr kid)
{
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Opt;
    n->children.push_back(std::move(kid));
    return n;
}

RegexNodePtr
RegexNode::repeat(RegexNodePtr kid, int min, int max)
{
    CA_FATAL_IF(min < 0, "negative repetition bound");
    CA_FATAL_IF(max != kUnbounded && max < min,
                "repetition {" << min << "," << max << "} has max < min");
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::Repeat;
    n->children.push_back(std::move(kid));
    n->repeatMin = min;
    n->repeatMax = max;
    return n;
}

RegexNodePtr
RegexNode::clone() const
{
    auto n = std::make_unique<RegexNode>();
    n->op = op;
    n->cls = cls;
    n->repeatMin = repeatMin;
    n->repeatMax = repeatMax;
    n->children.reserve(children.size());
    for (const auto &c : children)
        n->children.push_back(c->clone());
    return n;
}

size_t
RegexNode::countPositions() const
{
    if (op == RegexOp::Class)
        return 1;
    size_t n = 0;
    for (const auto &c : children)
        n += c->countPositions();
    if (op == RegexOp::Repeat) {
        // Expansion duplicates the body max (or min+1 for unbounded) times.
        int copies = repeatMax == kUnbounded ? repeatMin + 1 : repeatMax;
        if (copies < 1)
            copies = 1;
        n *= static_cast<size_t>(copies);
    }
    return n;
}

std::string
RegexNode::toString() const
{
    std::ostringstream os;
    switch (op) {
      case RegexOp::Empty:
        os << "()";
        break;
      case RegexOp::Class:
        os << cls.toString();
        break;
      case RegexOp::Concat:
        for (const auto &c : children)
            os << c->toString();
        break;
      case RegexOp::Alt: {
        os << '(';
        bool head = true;
        for (const auto &c : children) {
            if (!head)
                os << '|';
            head = false;
            os << c->toString();
        }
        os << ')';
        break;
      }
      case RegexOp::Star:
        os << '(' << children[0]->toString() << ")*";
        break;
      case RegexOp::Plus:
        os << '(' << children[0]->toString() << ")+";
        break;
      case RegexOp::Opt:
        os << '(' << children[0]->toString() << ")?";
        break;
      case RegexOp::Repeat:
        os << '(' << children[0]->toString() << "){" << repeatMin << ',';
        if (repeatMax != kUnbounded)
            os << repeatMax;
        os << '}';
        break;
    }
    return os.str();
}

} // namespace ca
