#include "nfa/dfa.h"

#include <algorithm>
#include <map>

#include "core/error.h"

namespace ca {

namespace {

/** Canonical (sorted, unique) enabled-set used as the subset key. */
using EnabledSet = std::vector<StateId>;

struct SetHash
{
    size_t
    operator()(const EnabledSet &s) const
    {
        uint64_t h = 1469598103934665603ull;
        for (StateId v : s) {
            h ^= v;
            h *= 1099511628211ull;
        }
        return static_cast<size_t>(h);
    }
};

} // namespace

Dfa
buildDfa(const Nfa &nfa, size_t max_states)
{
    Dfa dfa;

    // Always-enabled states (AllInput starts) join every enabled set.
    EnabledSet all_input;
    EnabledSet initial;
    for (StateId s = 0; s < nfa.numStates(); ++s) {
        StartType st = nfa.state(s).start;
        if (st == StartType::AllInput)
            all_input.push_back(s);
        if (st != StartType::None)
            initial.push_back(s);
    }
    std::sort(initial.begin(), initial.end());

    std::unordered_map<EnabledSet, Dfa::DfaStateId, SetHash> ids;
    std::vector<EnabledSet> worklist_sets;
    auto intern = [&](EnabledSet set) -> Dfa::DfaStateId {
        auto it = ids.find(set);
        if (it != ids.end())
            return it->second;
        CA_FATAL_IF(ids.size() >= max_states,
                    "DFA subset construction exceeded " << max_states
                                                        << " states");
        Dfa::DfaStateId id = static_cast<Dfa::DfaStateId>(ids.size());
        ids.emplace(set, id);
        worklist_sets.push_back(std::move(set));
        dfa.trans_.resize((id + size_t{1}) * Dfa::kAlphabet, 0);
        return id;
    };

    // Pool identical report lists so repeated edges share storage.
    std::map<std::vector<uint32_t>, uint32_t> report_pool;
    auto internReports = [&](std::vector<uint32_t> reports) -> uint32_t {
        std::sort(reports.begin(), reports.end());
        reports.erase(std::unique(reports.begin(), reports.end()),
                      reports.end());
        auto it = report_pool.find(reports);
        if (it != report_pool.end())
            return it->second;
        uint32_t idx = static_cast<uint32_t>(dfa.report_lists_.size());
        dfa.report_lists_.push_back(reports);
        report_pool.emplace(std::move(reports), idx);
        return idx;
    };

    intern(initial);

    for (size_t wi = 0; wi < worklist_sets.size(); ++wi) {
        // Copy: intern() growth may reallocate worklist_sets.
        EnabledSet enabled = worklist_sets[wi];
        Dfa::DfaStateId src = ids.at(enabled);

        for (int sym = 0; sym < Dfa::kAlphabet; ++sym) {
            uint8_t c = static_cast<uint8_t>(sym);
            EnabledSet next = all_input;
            std::vector<uint32_t> reports;
            for (StateId q : enabled) {
                const NfaState &st = nfa.state(q);
                if (!st.label.test(c))
                    continue;
                if (st.report)
                    reports.push_back(st.reportId);
                next.insert(next.end(), st.out.begin(), st.out.end());
            }
            std::sort(next.begin(), next.end());
            next.erase(std::unique(next.begin(), next.end()), next.end());

            Dfa::DfaStateId dst = intern(std::move(next));
            dfa.trans_[static_cast<size_t>(src) * Dfa::kAlphabet + sym] = dst;
            if (!reports.empty()) {
                dfa.edge_reports_[Dfa::edgeKey(src, c)] =
                    internReports(std::move(reports));
            }
        }
    }

    return dfa;
}

} // namespace ca
