#include "nfa/glushkov.h"

#include <algorithm>
#include <unordered_map>

#include "core/error.h"
#include "nfa/regex_parser.h"
#include "telemetry/telemetry.h"

namespace ca {

namespace {

/** Sorted-vector set union used for first/last/follow sets. */
std::vector<uint32_t>
setUnion(const std::vector<uint32_t> &a, const std::vector<uint32_t> &b)
{
    std::vector<uint32_t> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

/**
 * Structurally expands Repeat nodes so the remaining tree uses only
 * Empty/Class/Concat/Alt/Star/Plus/Opt.
 *
 *   e{m}    = e · e · ... (m copies);   e{0} = ()
 *   e{m,}   = e^(m-1) · e+            ; e{0,} = e*
 *   e{m,n}  = e^m · (e?)^(n-m)
 */
RegexNodePtr
expandRepeats(const RegexNode &node)
{
    if (node.op == RegexOp::Repeat) {
        RegexNodePtr body = expandRepeats(*node.children[0]);
        int min = node.repeatMin;
        int max = node.repeatMax;
        std::vector<RegexNodePtr> parts;
        if (max == RegexNode::kUnbounded) {
            if (min == 0)
                return RegexNode::star(std::move(body));
            for (int i = 0; i < min - 1; ++i)
                parts.push_back(body->clone());
            parts.push_back(RegexNode::plus(std::move(body)));
        } else {
            for (int i = 0; i < min; ++i)
                parts.push_back(body->clone());
            for (int i = min; i < max; ++i)
                parts.push_back(RegexNode::opt(body->clone()));
            if (parts.empty())
                return RegexNode::empty();
        }
        return RegexNode::concat(std::move(parts));
    }

    auto n = std::make_unique<RegexNode>();
    n->op = node.op;
    n->cls = node.cls;
    n->children.reserve(node.children.size());
    for (const auto &c : node.children)
        n->children.push_back(expandRepeats(*c));
    return n;
}

/** Per-subtree Glushkov attributes. */
struct GInfo
{
    bool nullable = false;
    std::vector<uint32_t> first;
    std::vector<uint32_t> last;
};

class GlushkovBuilder
{
  public:
    explicit GlushkovBuilder(size_t max_positions)
        : max_positions_(max_positions)
    {
    }

    GInfo
    run(const RegexNode &node)
    {
        return visit(node);
    }

    const std::vector<SymbolSet> &labels() const { return labels_; }
    const std::vector<std::vector<uint32_t>> &follow() const
    {
        return follow_;
    }

  private:
    GInfo
    visit(const RegexNode &node)
    {
        switch (node.op) {
          case RegexOp::Empty: {
            GInfo g;
            g.nullable = true;
            return g;
          }
          case RegexOp::Class: {
            CA_FATAL_IF(labels_.size() >= max_positions_,
                        "pattern exceeds position limit "
                            << max_positions_);
            uint32_t p = static_cast<uint32_t>(labels_.size());
            labels_.push_back(node.cls);
            follow_.emplace_back();
            GInfo g;
            g.nullable = false;
            g.first = {p};
            g.last = {p};
            return g;
          }
          case RegexOp::Concat: {
            GInfo acc;
            acc.nullable = true;
            for (const auto &child : node.children) {
                GInfo c = visit(*child);
                // Every position that can end the prefix is followed by
                // every position that can start this child.
                for (uint32_t p : acc.last)
                    follow_[p] = setUnion(follow_[p], c.first);
                if (acc.nullable)
                    acc.first = setUnion(acc.first, c.first);
                acc.last = c.nullable ? setUnion(acc.last, c.last)
                                      : std::move(c.last);
                acc.nullable = acc.nullable && c.nullable;
            }
            return acc;
          }
          case RegexOp::Alt: {
            GInfo acc;
            acc.nullable = false;
            for (const auto &child : node.children) {
                GInfo c = visit(*child);
                acc.nullable = acc.nullable || c.nullable;
                acc.first = setUnion(acc.first, c.first);
                acc.last = setUnion(acc.last, c.last);
            }
            return acc;
          }
          case RegexOp::Star:
          case RegexOp::Plus: {
            GInfo c = visit(*node.children[0]);
            for (uint32_t p : c.last)
                follow_[p] = setUnion(follow_[p], c.first);
            if (node.op == RegexOp::Star)
                c.nullable = true;
            return c;
          }
          case RegexOp::Opt: {
            GInfo c = visit(*node.children[0]);
            c.nullable = true;
            return c;
          }
          case RegexOp::Repeat:
            CA_THROW("Repeat node survived expansion (internal)");
        }
        CA_THROW("unknown regex node kind");
    }

    size_t max_positions_;
    std::vector<SymbolSet> labels_;
    std::vector<std::vector<uint32_t>> follow_;
};

} // namespace

Nfa
buildGlushkov(const RegexPattern &pattern, const GlushkovOptions &opts)
{
    CA_FATAL_IF(!pattern.root, "null pattern AST");
    CA_FATAL_IF(pattern.anchoredEnd,
                "'$' end anchors are not expressible in homogeneous NFAs; "
                "pattern /" << pattern.source << "/");

    RegexNodePtr expanded = expandRepeats(*pattern.root);
    size_t est = expanded->countPositions();
    CA_FATAL_IF(est > opts.maxPositions,
                "pattern /" << pattern.source << "/ expands to " << est
                            << " positions (limit " << opts.maxPositions
                            << ")");

    GlushkovBuilder builder(opts.maxPositions);
    GInfo root = builder.run(*expanded);

    CA_FATAL_IF(root.nullable,
                "pattern /" << pattern.source
                            << "/ matches the empty string; homogeneous "
                               "automata cannot report empty matches");

    Nfa nfa;
    StartType start_type = pattern.anchoredStart ? StartType::StartOfData
                                                 : StartType::AllInput;

    // ASCII case closure for case-insensitive rulesets.
    auto caseFold = [&](SymbolSet set) {
        if (!opts.caseInsensitive)
            return set;
        for (int c = 'a'; c <= 'z'; ++c) {
            if (set.test(static_cast<uint8_t>(c)))
                set.set(static_cast<uint8_t>(c - 'a' + 'A'));
            if (set.test(static_cast<uint8_t>(c - 'a' + 'A')))
                set.set(static_cast<uint8_t>(c));
        }
        return set;
    };

    std::vector<char> is_first(builder.labels().size(), 0);
    for (uint32_t p : root.first)
        is_first[p] = 1;
    std::vector<char> is_last(builder.labels().size(), 0);
    for (uint32_t p : root.last)
        is_last[p] = 1;

    for (uint32_t p = 0; p < builder.labels().size(); ++p) {
        // Non-reporting states carry reportId 0 so structurally equal
        // states from different rules can merge in the space pipeline.
        nfa.addState(caseFold(builder.labels()[p]),
                     is_first[p] ? start_type : StartType::None,
                     is_last[p] != 0, is_last[p] ? opts.reportId : 0);
    }
    for (uint32_t p = 0; p < builder.labels().size(); ++p)
        for (uint32_t q : builder.follow()[p])
            nfa.addTransition(p, q);

    nfa.dedupeEdges();
    return nfa;
}

Nfa
compileRuleset(const std::vector<std::string> &patterns,
               size_t max_positions, bool case_insensitive)
{
    CA_TRACE_SCOPE("ca.nfa.compile_ruleset");
    Nfa combined;
    for (size_t i = 0; i < patterns.size(); ++i) {
        RegexPattern pat = parseRegex(patterns[i]);
        GlushkovOptions opts;
        opts.reportId = static_cast<uint32_t>(i);
        opts.maxPositions = max_positions;
        opts.caseInsensitive = case_insensitive;
        Nfa fragment = buildGlushkov(pat, opts);
        combined.merge(fragment);
    }
    CA_COUNTER_ADD("ca.nfa.rulesets_compiled", 1);
    CA_COUNTER_ADD("ca.nfa.patterns_compiled", patterns.size());
    CA_COUNTER_ADD("ca.nfa.states_built", combined.numStates());
    return combined;
}

} // namespace ca
