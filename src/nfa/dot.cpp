#include "nfa/dot.h"

#include <sstream>

#include "core/string_utils.h"

namespace ca {

namespace detail {

std::string
dotNodeAttrs(const NfaState &s, bool show_labels)
{
    std::ostringstream os;
    os << '[';
    if (show_labels) {
        std::string label = s.name.empty() ? "" : s.name + "\\n";
        std::string cls = s.label.isAll() ? "*" : s.label.toString();
        // Escape quotes/backslashes for the DOT string literal.
        std::string esc;
        for (char c : cls) {
            if (c == '"' || c == '\\')
                esc.push_back('\\');
            esc.push_back(c);
        }
        os << "label=\"" << label << esc << "\" ";
    }
    if (s.report)
        os << "shape=doublecircle ";
    else
        os << "shape=circle ";
    if (s.start == StartType::AllInput)
        os << "style=filled fillcolor=lightblue ";
    else if (s.start == StartType::StartOfData)
        os << "style=filled fillcolor=lightgreen ";
    os << ']';
    return os.str();
}

} // namespace detail

std::string
toDot(const Nfa &nfa, const DotOptions &opts)
{
    std::ostringstream os;
    os << "digraph nfa {\n  rankdir=LR;\n";
    size_t n = std::min(nfa.numStates(), opts.maxStates);
    for (StateId s = 0; s < n; ++s)
        os << "  s" << s << ' '
           << detail::dotNodeAttrs(nfa.state(s), opts.showLabels)
           << ";\n";
    for (StateId s = 0; s < n; ++s)
        for (StateId t : nfa.state(s).out)
            if (t < n)
                os << "  s" << s << " -> s" << t << ";\n";
    if (n < nfa.numStates())
        os << "  note [shape=box label=\"" << (nfa.numStates() - n)
           << " more states truncated\"];\n";
    os << "}\n";
    return os.str();
}

} // namespace ca
