/**
 * @file
 * Recursive-descent parser for the PCRE-ish subset the benchmark rulesets
 * use: literals, escapes (\n \t \xNN \d \w \s ...), '.', character classes
 * [..] with ranges and negation, grouping, alternation, *, +, ?, {m}, {m,},
 * {m,n}, and ^/$ anchors at the pattern boundaries.
 */
#ifndef CA_NFA_REGEX_PARSER_H
#define CA_NFA_REGEX_PARSER_H

#include <string>

#include "nfa/regex_ast.h"

namespace ca {

/**
 * Parses @p pattern into an AST.
 * @throws CaError with a position-annotated message on syntax errors.
 */
RegexPattern parseRegex(const std::string &pattern);

} // namespace ca

#endif // CA_NFA_REGEX_PARSER_H
