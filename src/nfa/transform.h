/**
 * @file
 * Semantics-preserving NFA transformations.
 *
 * The space-optimized Cache Automaton design (CA_S, §3.1) relies on
 * *prefix merging*: patterns sharing a common prefix (e.g. "art" and
 * "artifact") are matched once, collapsing redundant states and shrinking
 * the average active set. We implement it as a forward-equivalence fixpoint
 * (two states merge when their label/start/report data and *predecessor
 * sets* are identical), plus the dual suffix merge and reachability pruning.
 */
#ifndef CA_NFA_TRANSFORM_H
#define CA_NFA_TRANSFORM_H

#include <cstddef>

#include "nfa/nfa.h"

namespace ca {

/** Result of a transformation pass. */
struct TransformStats
{
    size_t statesBefore = 0;
    size_t statesAfter = 0;
    size_t iterations = 0;

    size_t removed() const { return statesBefore - statesAfter; }
};

/**
 * Merges forward-equivalent states (common prefixes) to fixpoint.
 *
 * Two states are merged when they have identical (label, start type,
 * report flag, report id) and identical predecessor sets. Language and
 * report offsets/ids are preserved exactly.
 */
TransformStats mergePrefixes(Nfa &nfa);

/**
 * Merges backward-equivalent states (common suffixes): identical
 * (label, start, report data) and identical successor sets.
 */
TransformStats mergeSuffixes(Nfa &nfa);

/** Removes states unreachable from any start state. */
TransformStats removeUnreachable(Nfa &nfa);

/**
 * Removes states that cannot reach any reporting state (they can never
 * contribute to an output).
 */
TransformStats removeDead(Nfa &nfa);

/**
 * The full CA_S pre-mapping pipeline:
 * removeUnreachable → removeDead → mergePrefixes → mergeSuffixes.
 */
TransformStats optimizeForSpace(Nfa &nfa);

} // namespace ca

#endif // CA_NFA_TRANSFORM_H
