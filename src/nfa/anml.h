/**
 * @file
 * ANML (Automata Network Markup Language) reader/writer.
 *
 * ANML is Micron's XML dialect for homogeneous automata and the exchange
 * format of the ANMLZoo benchmark suite the paper evaluates. This module
 * supports the subset those benchmarks use:
 *
 *   <anml> / <automata-network>
 *   <state-transition-element id symbol-set start>
 *       <activate-on-match element="..."/>
 *       <report-on-match reportcode="..."/>
 *   </state-transition-element>
 *
 * symbol-set uses bracket-expression syntax ("[abc]", "[^\x00-\x1f]", "*").
 * The writer emits the same subset, so round trips are lossless for our IR.
 */
#ifndef CA_NFA_ANML_H
#define CA_NFA_ANML_H

#include <string>

#include "nfa/nfa.h"

namespace ca {

/**
 * Parses an ANML document into an NFA.
 * @throws CaError on malformed XML, unknown references, or bad symbol sets.
 */
Nfa parseAnml(const std::string &text);

/** Reads a file and parses it as ANML. @throws CaError on I/O failure. */
Nfa loadAnmlFile(const std::string &path);

/** Serializes @p nfa as an ANML document. */
std::string writeAnml(const Nfa &nfa, const std::string &network_id = "ca");

/** Writes ANML to a file. @throws CaError on I/O failure. */
void saveAnmlFile(const Nfa &nfa, const std::string &path);

} // namespace ca

#endif // CA_NFA_ANML_H
