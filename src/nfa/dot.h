/**
 * @file
 * Graphviz DOT export for automata and mappings.
 *
 * Debugging and documentation aid: renders homogeneous NFAs with their
 * labels/start/report attributes (the mapped-automaton variant lives in
 * compiler/visualize.h), mirroring the paper's Figure 1 illustration.
 */
#ifndef CA_NFA_DOT_H
#define CA_NFA_DOT_H

#include <string>

#include "nfa/nfa.h"

namespace ca {

/** Options for DOT rendering. */
struct DotOptions
{
    /** Cap on rendered states (bigger automata are truncated with a
     *  note; DOT beyond a few thousand nodes is unusable anyway). */
    size_t maxStates = 2000;
    /** Include the symbol-set label text on each node. */
    bool showLabels = true;
};

/** Renders @p nfa as a DOT digraph. */
std::string toDot(const Nfa &nfa, const DotOptions &opts = {});

namespace detail {
/** Shared node-attribute rendering (used by the mapped-automaton view). */
std::string dotNodeAttrs(const NfaState &s, bool show_labels);
} // namespace detail

} // namespace ca

#endif // CA_NFA_DOT_H
