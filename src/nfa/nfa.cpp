#include "nfa/nfa.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/error.h"

namespace ca {

StateId
Nfa::addState(const SymbolSet &label, StartType start, bool report,
              uint32_t report_id, std::string name)
{
    NfaState s;
    s.label = label;
    s.start = start;
    s.report = report;
    s.reportId = report_id;
    s.name = std::move(name);
    states_.push_back(std::move(s));
    reverse_valid_ = false;
    return static_cast<StateId>(states_.size() - 1);
}

void
Nfa::addTransition(StateId from, StateId to)
{
    CA_ASSERT_MSG(from < states_.size() && to < states_.size(),
                  "transition " << from << "->" << to << " out of range");
    states_[from].out.push_back(to);
    reverse_valid_ = false;
}

void
Nfa::addTransition(StateId from, StateId to, Weight w)
{
    CA_ASSERT_MSG(from < states_.size() && to < states_.size(),
                  "transition " << from << "->" << to << " out of range");
    auto &s = states_[from];
    s.out.push_back(to);
    // Weights stay unmaterialized (implied all-zero) until the first
    // nonzero arrives; then backfill zeros for the edges added so far.
    if (w != 0 && s.outWeight.empty())
        s.outWeight.assign(s.out.size() - 1, 0);
    if (w != 0 || !s.outWeight.empty())
        s.outWeight.push_back(w);
    reverse_valid_ = false;
}

void
Nfa::dedupeEdges()
{
    for (auto &s : states_) {
        if (s.outWeight.empty()) {
            std::sort(s.out.begin(), s.out.end());
            s.out.erase(std::unique(s.out.begin(), s.out.end()),
                        s.out.end());
            continue;
        }
        // Weighted: sort (target, weight) pairs, keep max weight per target.
        std::vector<std::pair<StateId, Weight>> edges;
        edges.reserve(s.out.size());
        for (size_t k = 0; k < s.out.size(); ++k)
            edges.emplace_back(s.out[k], s.outWeight[k]);
        std::sort(edges.begin(), edges.end());
        s.out.clear();
        s.outWeight.clear();
        for (size_t k = 0; k < edges.size(); ++k) {
            if (!s.out.empty() && s.out.back() == edges[k].first) {
                s.outWeight.back() =
                    std::max(s.outWeight.back(), edges[k].second);
            } else {
                s.out.push_back(edges[k].first);
                s.outWeight.push_back(edges[k].second);
            }
        }
    }
    reverse_valid_ = false;
}

bool
Nfa::hasWeights() const
{
    for (const auto &s : states_) {
        if (s.startWeight != 0)
            return true;
        for (Weight w : s.outWeight)
            if (w != 0)
                return true;
    }
    return false;
}

size_t
Nfa::numTransitions() const
{
    size_t n = 0;
    for (const auto &s : states_)
        n += s.out.size();
    return n;
}

std::vector<StateId>
Nfa::startStates() const
{
    std::vector<StateId> ids;
    for (StateId i = 0; i < states_.size(); ++i)
        if (states_[i].start != StartType::None)
            ids.push_back(i);
    return ids;
}

std::vector<StateId>
Nfa::reportStates() const
{
    std::vector<StateId> ids;
    for (StateId i = 0; i < states_.size(); ++i)
        if (states_[i].report)
            ids.push_back(i);
    return ids;
}

void
Nfa::buildReverse() const
{
    reverse_.assign(states_.size(), {});
    for (StateId i = 0; i < states_.size(); ++i)
        for (StateId t : states_[i].out)
            reverse_[t].push_back(i);
    reverse_valid_ = true;
}

const std::vector<StateId> &
Nfa::predecessors(StateId id) const
{
    CA_ASSERT(id < states_.size());
    if (!reverse_valid_)
        buildReverse();
    return reverse_[id];
}

void
Nfa::invalidateReverse()
{
    reverse_valid_ = false;
    reverse_.clear();
}

NfaStats
Nfa::stats() const
{
    NfaStats st;
    st.numStates = states_.size();
    std::vector<size_t> fan_in(states_.size(), 0);
    for (const auto &s : states_) {
        st.numTransitions += s.out.size();
        st.maxFanOut = std::max(st.maxFanOut, s.out.size());
        if (s.start != StartType::None)
            ++st.numStartStates;
        if (s.report)
            ++st.numReportStates;
        for (StateId t : s.out)
            ++fan_in[t];
    }
    for (size_t f : fan_in)
        st.maxFanIn = std::max(st.maxFanIn, f);
    st.avgFanOut = states_.empty()
        ? 0.0
        : static_cast<double>(st.numTransitions) /
            static_cast<double>(states_.size());
    return st;
}

void
Nfa::validate() const
{
    for (StateId i = 0; i < states_.size(); ++i) {
        const auto &s = states_[i];
        std::vector<StateId> sorted = s.out;
        std::sort(sorted.begin(), sorted.end());
        for (size_t k = 0; k < sorted.size(); ++k) {
            CA_FATAL_IF(sorted[k] >= states_.size(),
                        "state " << i << " has out-of-range edge to "
                                 << sorted[k]);
            CA_FATAL_IF(k > 0 && sorted[k] == sorted[k - 1],
                        "state " << i << " has duplicate edge to "
                                 << sorted[k]);
        }
        CA_FATAL_IF(s.label.empty() && !s.out.empty(),
                    "state " << i << " has an empty label but successors; "
                             << "it can never activate");
        CA_FATAL_IF(!s.outWeight.empty() &&
                        s.outWeight.size() != s.out.size(),
                    "state " << i << " has " << s.out.size()
                             << " edges but " << s.outWeight.size()
                             << " edge weights");
    }

    // Reachability from start states (forward BFS).
    std::vector<char> reach(states_.size(), 0);
    std::vector<StateId> stack = startStates();
    CA_FATAL_IF(!states_.empty() && stack.empty(),
                "automaton has no start states");
    for (StateId s : stack)
        reach[s] = 1;
    while (!stack.empty()) {
        StateId cur = stack.back();
        stack.pop_back();
        for (StateId t : states_[cur].out) {
            if (!reach[t]) {
                reach[t] = 1;
                stack.push_back(t);
            }
        }
    }
    for (StateId i = 0; i < states_.size(); ++i) {
        CA_FATAL_IF(states_[i].report && !reach[i],
                    "report state " << i << " is unreachable from any start");
    }
}

StateId
Nfa::merge(const Nfa &other)
{
    StateId offset = static_cast<StateId>(states_.size());
    states_.reserve(states_.size() + other.states_.size());
    for (const auto &s : other.states_) {
        NfaState copy = s;
        for (auto &t : copy.out)
            t += offset;
        states_.push_back(std::move(copy));
    }
    reverse_valid_ = false;
    return offset;
}

Nfa
Nfa::subAutomaton(const std::vector<StateId> &keep) const
{
    std::unordered_map<StateId, StateId> remap;
    remap.reserve(keep.size());
    Nfa out;
    for (StateId old_id : keep) {
        CA_ASSERT(old_id < states_.size());
        const auto &s = states_[old_id];
        StateId new_id =
            out.addState(s.label, s.start, s.report, s.reportId, s.name);
        out.state(new_id).startWeight = s.startWeight;
        remap[old_id] = new_id;
    }
    for (StateId old_id : keep) {
        const auto &s = states_[old_id];
        for (size_t k = 0; k < s.out.size(); ++k) {
            auto it = remap.find(s.out[k]);
            if (it != remap.end())
                out.addTransition(remap[old_id], it->second,
                                  edgeWeight(old_id, k));
        }
    }
    return out;
}

} // namespace ca
