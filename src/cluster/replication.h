/**
 * @file
 * Peer artifact replication (docs/CLUSTER.md).
 *
 * A Replicator holds an ordered list of peer match servers and pulls
 * compiled CAAF artifacts from them by fingerprint over the CANP
 * ARTIFACT_QUERY/FETCH frames. Peers are tried in order; a peer that is
 * down, does not hold the artifact, or serves bytes that fail CAAF
 * validation or hash to the wrong fingerprint is logged and skipped —
 * the fetch only throws once every peer has failed. A corrupted or
 * truncated transfer therefore never poisons anything: the bad bytes
 * are rejected before they reach a cache directory, and the next peer
 * (or the next call) retries cleanly.
 *
 * The usual wiring is cacheFetcher(): plug the replicator into an
 * ArtifactCache as its remote fetcher, so cache.getOrFetch(fp) becomes
 * "local hit, else pull from the cluster, validate, publish atomically".
 *
 * Telemetry: ca.cluster.fetch_{attempts,successes,failures} counters and
 * ca.cluster.fetch_bytes.
 */
#ifndef CA_CLUSTER_REPLICATION_H
#define CA_CLUSTER_REPLICATION_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "persist/artifact.h"
#include "persist/cache.h"

namespace ca::cluster {

/** One peer match server ("host:port"). */
struct PeerAddress
{
    std::string host;
    uint16_t port = 0;
};

/**
 * Parses "host:port" (the ca_server --peer syntax). @throws CaError on
 * a missing/invalid port or empty host.
 */
PeerAddress parsePeer(const std::string &spec);

/** Replication-side network knobs. */
struct ReplicatorOptions
{
    int connectTimeoutMs = 5'000;
    /** Bound on any single blocking wait during a transfer. */
    int ioTimeoutMs = 30'000;
};

/** Point-in-time replication accounting (per Replicator instance). */
struct ReplicationStats
{
    /** Peer transfers started (one per peer tried, not per fetch()). */
    uint64_t fetchAttempts = 0;
    uint64_t fetchSuccesses = 0;
    /** Peer transfers that failed (connect, unavailable, corrupt). */
    uint64_t fetchFailures = 0;
    /** Validated artifact bytes pulled in. */
    uint64_t bytesFetched = 0;
};

/** Pulls artifacts by fingerprint from an ordered list of peers. */
class Replicator
{
  public:
    explicit Replicator(std::vector<PeerAddress> peers,
                        const ReplicatorOptions &opts = {});

    const std::vector<PeerAddress> &peers() const { return peers_; }

    /**
     * Fetches and fully validates the CAAF bytes for @p fingerprint:
     * peers in order, first success wins. The returned bytes parse as a
     * complete artifact whose automaton hashes to @p fingerprint.
     * @throws CaError when every peer fails.
     */
    std::vector<uint8_t> fetchBytes(uint64_t fingerprint);

    /** fetchBytes + decode, for callers that want the automaton. */
    persist::LoadedArtifact fetch(uint64_t fingerprint);

    /**
     * An ArtifactCache::RemoteFetcher bound to this replicator (the
     * replicator must outlive the cache's use of it).
     */
    persist::ArtifactCache::RemoteFetcher cacheFetcher();

    ReplicationStats stats() const;

  private:
    std::vector<PeerAddress> peers_;
    ReplicatorOptions opts_;
    mutable std::mutex mutex_;
    ReplicationStats stats_;
};

} // namespace ca::cluster

#endif // CA_CLUSTER_REPLICATION_H
