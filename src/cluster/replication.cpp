#include "cluster/replication.h"

#include "core/error.h"
#include "core/logging.h"
#include "net/client.h"
#include "telemetry/telemetry.h"

namespace ca::cluster {

PeerAddress
parsePeer(const std::string &spec)
{
    size_t colon = spec.rfind(':');
    CA_FATAL_IF(colon == std::string::npos || colon == 0 ||
                    colon + 1 == spec.size(),
                "cluster: peer must be host:port, got \"" << spec << "\"");
    PeerAddress p;
    p.host = spec.substr(0, colon);
    unsigned long port = 0;
    try {
        size_t used = 0;
        port = std::stoul(spec.substr(colon + 1), &used);
        if (used != spec.size() - colon - 1)
            port = 0;
    } catch (const std::exception &) {
        port = 0;
    }
    CA_FATAL_IF(port == 0 || port > 65535,
                "cluster: invalid peer port in \"" << spec << "\"");
    p.port = static_cast<uint16_t>(port);
    return p;
}

Replicator::Replicator(std::vector<PeerAddress> peers,
                       const ReplicatorOptions &opts)
    : peers_(std::move(peers)), opts_(opts)
{
    CA_FATAL_IF(peers_.empty(), "cluster: replicator needs >= 1 peer");
}

std::vector<uint8_t>
Replicator::fetchBytes(uint64_t fingerprint)
{
    CA_TRACE_SCOPE_CAT("ca.cluster.fetch", "ca.cluster");
    std::string last_error = "no peers configured";
    for (const PeerAddress &peer : peers_) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.fetchAttempts;
        }
        CA_COUNTER_ADD("ca.cluster.fetch_attempts", 1);
        try {
            net::ClientOptions copts;
            copts.connectTimeoutMs = opts_.connectTimeoutMs;
            copts.ioTimeoutMs = opts_.ioTimeoutMs;
            net::MatchClient client;
            // Unpinned connect: the peer's *serving* automaton is
            // irrelevant — we are here for an artifact it may merely
            // still hold (e.g. a draining epoch).
            client.connect(peer.host, peer.port, copts);
            std::vector<uint8_t> bytes =
                client.fetchArtifact(fingerprint);
            // End-to-end check: the chunk CRCs only cover the wire; a
            // peer serving the wrong (or damaged) file fails here and
            // the next peer gets its chance.
            persist::LoadedArtifact loaded =
                persist::loadArtifactBytes(bytes);
            CA_FATAL_IF(persist::artifactFingerprint(*loaded.automaton) !=
                            fingerprint,
                        "artifact does not hash to the requested "
                            "fingerprint");
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.fetchSuccesses;
                stats_.bytesFetched += bytes.size();
            }
            CA_COUNTER_ADD("ca.cluster.fetch_successes", 1);
            CA_COUNTER_ADD("ca.cluster.fetch_bytes", bytes.size());
            CA_INFO("cluster: fetched artifact " << std::hex << fingerprint
                                                 << std::dec << " ("
                                                 << bytes.size()
                                                 << " bytes) from "
                                                 << peer.host << ":"
                                                 << peer.port);
            return bytes;
        } catch (const CaError &e) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.fetchFailures;
            }
            CA_COUNTER_ADD("ca.cluster.fetch_failures", 1);
            CA_WARN("cluster: peer " << peer.host << ":" << peer.port
                                     << " failed for artifact " << std::hex
                                     << fingerprint << std::dec << ": "
                                     << e.what());
            last_error = e.what();
        }
    }
    CA_THROW("cluster: all " << peers_.size()
                             << " peer(s) failed for artifact " << std::hex
                             << fingerprint << std::dec
                             << " (last: " << last_error << ")");
}

persist::LoadedArtifact
Replicator::fetch(uint64_t fingerprint)
{
    return persist::loadArtifactBytes(fetchBytes(fingerprint));
}

persist::ArtifactCache::RemoteFetcher
Replicator::cacheFetcher()
{
    return [this](uint64_t fingerprint) { return fetchBytes(fingerprint); };
}

ReplicationStats
Replicator::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace ca::cluster
