#include "net/protocol.h"

#include <cstring>

#include "core/error.h"
#include "core/serde.h"
#include "persist/artifact.h"

namespace ca::net {

namespace {

/** Reserves the header, returns the offset where the payload starts. */
size_t
beginFrame(std::vector<uint8_t> &out, FrameType type)
{
    serde::putU32(out, 0); // patched by endFrame
    serde::putU8(out, static_cast<uint8_t>(type));
    return out.size();
}

/** Patches the payload length once the payload has been appended. */
void
endFrame(std::vector<uint8_t> &out, size_t payload_start)
{
    size_t payload = out.size() - payload_start;
    CA_ASSERT_MSG(payload <= kMaxFramePayload,
                  "encoded frame payload " << payload << " exceeds protocol "
                      "ceiling " << kMaxFramePayload);
    uint32_t v = static_cast<uint32_t>(payload);
    size_t len_at = payload_start - kFrameHeaderBytes;
    for (int i = 0; i < 4; ++i)
        out[len_at + static_cast<size_t>(i)] =
            static_cast<uint8_t>(v >> (8 * i));
}

} // namespace

std::string
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::ProtocolError: return "protocol_error";
      case ErrorCode::VersionMismatch: return "version_mismatch";
      case ErrorCode::FingerprintMismatch: return "fingerprint_mismatch";
      case ErrorCode::Busy: return "busy";
      case ErrorCode::UnknownStream: return "unknown_stream";
      case ErrorCode::DuplicateStream: return "duplicate_stream";
      case ErrorCode::StreamLimit: return "stream_limit";
      case ErrorCode::IdleTimeout: return "idle_timeout";
      case ErrorCode::SlowConsumer: return "slow_consumer";
      case ErrorCode::Shutdown: return "shutdown";
    }
    return "code_" + std::to_string(static_cast<unsigned>(code));
}

void
appendHello(std::vector<uint8_t> &out, uint64_t fingerprint,
            uint16_t version)
{
    size_t p = beginFrame(out, FrameType::Hello);
    serde::putU32(out, kHelloMagic);
    serde::putU16(out, version);
    serde::putU64(out, fingerprint);
    endFrame(out, p);
}

void
appendOpenStream(std::vector<uint8_t> &out, uint32_t streamId)
{
    size_t p = beginFrame(out, FrameType::OpenStream);
    serde::putU32(out, streamId);
    endFrame(out, p);
}

void
appendData(std::vector<uint8_t> &out, uint32_t streamId,
           const uint8_t *data, size_t size)
{
    CA_FATAL_IF(size + 4 > kMaxFramePayload,
                "DATA chunk of " << size << " bytes exceeds the "
                    << kMaxFramePayload << "-byte frame ceiling");
    size_t p = beginFrame(out, FrameType::Data);
    serde::putU32(out, streamId);
    out.insert(out.end(), data, data + size);
    endFrame(out, p);
}

void
appendFlush(std::vector<uint8_t> &out, uint32_t streamId, uint64_t token)
{
    size_t p = beginFrame(out, FrameType::Flush);
    serde::putU32(out, streamId);
    serde::putU64(out, token);
    endFrame(out, p);
}

void
appendCloseStream(std::vector<uint8_t> &out, uint32_t streamId,
                  uint64_t symbols, uint64_t reports)
{
    size_t p = beginFrame(out, FrameType::CloseStream);
    serde::putU32(out, streamId);
    serde::putU64(out, symbols);
    serde::putU64(out, reports);
    endFrame(out, p);
}

void
appendReports(std::vector<uint8_t> &out, uint32_t streamId,
              const Report *reports, size_t count)
{
    CA_FATAL_IF(8 + count * kWireReportBytes > kMaxFramePayload,
                "REPORTS batch of " << count << " exceeds the frame "
                    "ceiling; split the batch");
    size_t p = beginFrame(out, FrameType::Reports);
    serde::putU32(out, streamId);
    serde::putU32(out, static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
        serde::putU64(out, reports[i].offset);
        serde::putU32(out, reports[i].reportId);
        serde::putU32(out, reports[i].state);
    }
    endFrame(out, p);
}

void
appendError(std::vector<uint8_t> &out, ErrorCode code, uint32_t streamId,
            const std::string &message)
{
    size_t p = beginFrame(out, FrameType::Error);
    serde::putU16(out, static_cast<uint16_t>(code));
    serde::putU32(out, streamId);
    serde::putString(out, message);
    endFrame(out, p);
}

void
appendGoodbye(std::vector<uint8_t> &out)
{
    size_t p = beginFrame(out, FrameType::Goodbye);
    endFrame(out, p);
}

void
appendFrame(std::vector<uint8_t> &out, const Frame &f)
{
    switch (f.type) {
      case FrameType::Hello:
        appendHello(out, f.fingerprint, f.version);
        return;
      case FrameType::OpenStream:
        appendOpenStream(out, f.streamId);
        return;
      case FrameType::Data:
        appendData(out, f.streamId, f.data.data(), f.data.size());
        return;
      case FrameType::Flush:
        appendFlush(out, f.streamId, f.flushToken);
        return;
      case FrameType::CloseStream:
        appendCloseStream(out, f.streamId, f.symbols, f.reports);
        return;
      case FrameType::Reports:
        appendReports(out, f.streamId, f.reportBatch.data(),
                      f.reportBatch.size());
        return;
      case FrameType::Error:
        appendError(out, f.errorCode, f.streamId, f.message);
        return;
      case FrameType::Goodbye:
        appendGoodbye(out);
        return;
    }
    CA_THROW("appendFrame: unknown frame type "
             << static_cast<unsigned>(f.type));
}

Frame
decodePayload(FrameType type, const uint8_t *payload, size_t size)
{
    serde::ByteReader r(payload, size);
    Frame f;
    f.type = type;
    switch (type) {
      case FrameType::Hello:
        f.magic = r.u32();
        f.version = r.u16();
        f.fingerprint = r.u64();
        CA_FATAL_IF(f.magic != kHelloMagic,
                    "net: HELLO magic mismatch (got 0x" << std::hex
                        << f.magic << ")");
        break;
      case FrameType::OpenStream:
        f.streamId = r.u32();
        break;
      case FrameType::Data:
        f.streamId = r.u32();
        f.data.assign(payload + r.pos(), payload + size);
        r.skip(size - r.pos());
        break;
      case FrameType::Flush:
        f.streamId = r.u32();
        f.flushToken = r.u64();
        break;
      case FrameType::CloseStream:
        f.streamId = r.u32();
        f.symbols = r.u64();
        f.reports = r.u64();
        break;
      case FrameType::Reports: {
        f.streamId = r.u32();
        uint32_t count = r.u32();
        // The count must agree with the bytes actually present before
        // any allocation happens (hostile counts must not reserve GBs).
        CA_FATAL_IF(static_cast<uint64_t>(count) * kWireReportBytes !=
                        r.remaining(),
                    "net: REPORTS count " << count << " disagrees with "
                        << r.remaining() << " payload bytes");
        f.reportBatch.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            Report rep;
            rep.offset = r.u64();
            rep.reportId = r.u32();
            rep.state = r.u32();
            f.reportBatch.push_back(rep);
        }
        break;
      }
      case FrameType::Error: {
        uint16_t code = r.u16();
        f.errorCode = static_cast<ErrorCode>(code);
        f.streamId = r.u32();
        f.message = r.str();
        break;
      }
      case FrameType::Goodbye:
        break;
      default:
        CA_THROW("net: unknown frame type "
                 << static_cast<unsigned>(type));
    }
    CA_FATAL_IF(!r.done(), "net: frame type "
                    << static_cast<unsigned>(type) << " carries "
                    << r.remaining() << " trailing payload bytes");
    return f;
}

FrameDecoder::FrameDecoder(uint32_t max_payload)
    : max_payload_(std::min(max_payload, kMaxFramePayload))
{
}

void
FrameDecoder::append(const uint8_t *data, size_t size)
{
    // Compact before growing: drop the already-decoded prefix so the
    // buffer stays proportional to one in-flight frame, not the stream.
    if (consumed_ > 0 && (consumed_ >= buf_.size() ||
                          consumed_ >= (64u << 10))) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<long>(consumed_));
        consumed_ = 0;
    }
    buf_.insert(buf_.end(), data, data + size);
}

std::optional<Frame>
FrameDecoder::next()
{
    size_t avail = buf_.size() - consumed_;
    if (avail < kFrameHeaderBytes)
        return std::nullopt;
    const uint8_t *p = buf_.data() + consumed_;
    uint32_t payload = 0;
    for (int i = 0; i < 4; ++i)
        payload |= uint32_t{p[i]} << (8 * i);
    CA_FATAL_IF(payload > max_payload_,
                "net: frame payload " << payload
                    << " exceeds the " << max_payload_ << "-byte bound");
    uint8_t type = p[4];
    CA_FATAL_IF(type < static_cast<uint8_t>(FrameType::Hello) ||
                    type > static_cast<uint8_t>(FrameType::Goodbye),
                "net: unknown frame type " << unsigned{type});
    if (avail < kFrameHeaderBytes + payload)
        return std::nullopt;
    Frame f = decodePayload(static_cast<FrameType>(type),
                            p + kFrameHeaderBytes, payload);
    consumed_ += kFrameHeaderBytes + payload;
    return f;
}

uint64_t
automatonFingerprint(const MappedAutomaton &mapped)
{
    // Canonical serialization under a fixed META so the hash depends
    // only on the compiled automaton — not on labels, tools, or whether
    // it travelled through a .caa file first.
    persist::ArtifactMeta meta;
    meta.tool = "ca-net-fingerprint";
    meta.label.clear();
    meta.contentKey = 0;
    persist::ArtifactWriter w(meta);
    w.setAutomaton(mapped);
    return serde::fnv1a64(w.finish());
}

} // namespace ca::net
