#include "net/protocol.h"

#include <cstring>

#include "core/error.h"
#include "core/serde.h"
#include "persist/artifact.h"

namespace ca::net {

namespace {

/** Reserves the header, returns the offset where the payload starts. */
size_t
beginFrame(std::vector<uint8_t> &out, FrameType type)
{
    serde::putU32(out, 0); // patched by endFrame
    serde::putU8(out, static_cast<uint8_t>(type));
    return out.size();
}

/** Patches the payload length once the payload has been appended. */
void
endFrame(std::vector<uint8_t> &out, size_t payload_start)
{
    size_t payload = out.size() - payload_start;
    CA_ASSERT_MSG(payload <= kMaxFramePayload,
                  "encoded frame payload " << payload << " exceeds protocol "
                      "ceiling " << kMaxFramePayload);
    uint32_t v = static_cast<uint32_t>(payload);
    size_t len_at = payload_start - kFrameHeaderBytes;
    for (int i = 0; i < 4; ++i)
        out[len_at + static_cast<size_t>(i)] =
            static_cast<uint8_t>(v >> (8 * i));
}

} // namespace

std::string
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::ProtocolError: return "protocol_error";
      case ErrorCode::VersionMismatch: return "version_mismatch";
      case ErrorCode::FingerprintMismatch: return "fingerprint_mismatch";
      case ErrorCode::Busy: return "busy";
      case ErrorCode::UnknownStream: return "unknown_stream";
      case ErrorCode::DuplicateStream: return "duplicate_stream";
      case ErrorCode::StreamLimit: return "stream_limit";
      case ErrorCode::IdleTimeout: return "idle_timeout";
      case ErrorCode::SlowConsumer: return "slow_consumer";
      case ErrorCode::Shutdown: return "shutdown";
      case ErrorCode::PermissionDenied: return "permission_denied";
      case ErrorCode::ArtifactUnavailable: return "artifact_unavailable";
    }
    return "code_" + std::to_string(static_cast<unsigned>(code));
}

void
appendHello(std::vector<uint8_t> &out, uint64_t fingerprint,
            uint16_t version)
{
    size_t p = beginFrame(out, FrameType::Hello);
    serde::putU32(out, kHelloMagic);
    serde::putU16(out, version);
    serde::putU64(out, fingerprint);
    endFrame(out, p);
}

void
appendOpenStream(std::vector<uint8_t> &out, uint32_t streamId)
{
    size_t p = beginFrame(out, FrameType::OpenStream);
    serde::putU32(out, streamId);
    endFrame(out, p);
}

void
appendData(std::vector<uint8_t> &out, uint32_t streamId,
           const uint8_t *data, size_t size)
{
    CA_FATAL_IF(size + 4 > kMaxFramePayload,
                "DATA chunk of " << size << " bytes exceeds the "
                    << kMaxFramePayload << "-byte frame ceiling");
    size_t p = beginFrame(out, FrameType::Data);
    serde::putU32(out, streamId);
    out.insert(out.end(), data, data + size);
    endFrame(out, p);
}

void
appendFlush(std::vector<uint8_t> &out, uint32_t streamId, uint64_t token)
{
    size_t p = beginFrame(out, FrameType::Flush);
    serde::putU32(out, streamId);
    serde::putU64(out, token);
    endFrame(out, p);
}

void
appendCloseStream(std::vector<uint8_t> &out, uint32_t streamId,
                  uint64_t symbols, uint64_t reports)
{
    size_t p = beginFrame(out, FrameType::CloseStream);
    serde::putU32(out, streamId);
    serde::putU64(out, symbols);
    serde::putU64(out, reports);
    endFrame(out, p);
}

void
appendReports(std::vector<uint8_t> &out, uint32_t streamId,
              const Report *reports, size_t count)
{
    CA_FATAL_IF(8 + count * kWireReportBytes > kMaxFramePayload,
                "REPORTS batch of " << count << " exceeds the frame "
                    "ceiling; split the batch");
    size_t p = beginFrame(out, FrameType::Reports);
    serde::putU32(out, streamId);
    serde::putU32(out, static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
        serde::putU64(out, reports[i].offset);
        serde::putU32(out, reports[i].reportId);
        serde::putU32(out, reports[i].state);
    }
    endFrame(out, p);
}

void
appendScoredReports(std::vector<uint8_t> &out, uint32_t streamId,
                    const Report *reports, size_t count)
{
    CA_FATAL_IF(8 + count * kWireScoredReportBytes > kMaxFramePayload,
                "SCORED_REPORTS batch of " << count << " exceeds the "
                    "frame ceiling; split the batch");
    size_t p = beginFrame(out, FrameType::ScoredReports);
    serde::putU32(out, streamId);
    serde::putU32(out, static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
        serde::putU64(out, reports[i].offset);
        serde::putU32(out, reports[i].reportId);
        serde::putU32(out, reports[i].state);
        serde::putI64(out, reports[i].score);
    }
    endFrame(out, p);
}

void
appendError(std::vector<uint8_t> &out, ErrorCode code, uint32_t streamId,
            const std::string &message)
{
    size_t p = beginFrame(out, FrameType::Error);
    serde::putU16(out, static_cast<uint16_t>(code));
    serde::putU32(out, streamId);
    serde::putString(out, message);
    endFrame(out, p);
}

void
appendGoodbye(std::vector<uint8_t> &out)
{
    size_t p = beginFrame(out, FrameType::Goodbye);
    endFrame(out, p);
}

void
appendStats(std::vector<uint8_t> &out, uint64_t token, uint32_t sections)
{
    size_t p = beginFrame(out, FrameType::Stats);
    serde::putU64(out, token);
    serde::putU32(out, sections);
    endFrame(out, p);
}

void
appendArtifactQuery(std::vector<uint8_t> &out, uint64_t fingerprint)
{
    size_t p = beginFrame(out, FrameType::ArtifactQuery);
    serde::putU64(out, fingerprint);
    endFrame(out, p);
}

void
appendArtifactOffer(std::vector<uint8_t> &out, uint64_t fingerprint,
                    bool available, uint64_t totalBytes,
                    uint32_t chunkBytes, uint32_t chunkCount)
{
    size_t p = beginFrame(out, FrameType::ArtifactOffer);
    serde::putU64(out, fingerprint);
    serde::putU8(out, available ? 1 : 0);
    serde::putU64(out, totalBytes);
    serde::putU32(out, chunkBytes);
    serde::putU32(out, chunkCount);
    endFrame(out, p);
}

void
appendArtifactFetch(std::vector<uint8_t> &out, uint64_t fingerprint,
                    uint32_t chunkIndex)
{
    size_t p = beginFrame(out, FrameType::ArtifactFetch);
    serde::putU64(out, fingerprint);
    serde::putU32(out, chunkIndex);
    endFrame(out, p);
}

void
appendArtifactChunk(std::vector<uint8_t> &out, uint64_t fingerprint,
                    uint32_t chunkIndex, uint32_t chunkCount,
                    const uint8_t *data, size_t size)
{
    CA_FATAL_IF(size + 20 > kMaxFramePayload,
                "ARTIFACT_CHUNK of " << size << " bytes exceeds the "
                    << kMaxFramePayload << "-byte frame ceiling");
    size_t p = beginFrame(out, FrameType::ArtifactChunk);
    serde::putU64(out, fingerprint);
    serde::putU32(out, chunkIndex);
    serde::putU32(out, chunkCount);
    serde::putU32(out, serde::crc32(data, size));
    out.insert(out.end(), data, data + size);
    endFrame(out, p);
}

void
appendSwap(std::vector<uint8_t> &out, uint64_t token, uint64_t fingerprint,
           const std::string &source)
{
    size_t p = beginFrame(out, FrameType::Swap);
    serde::putU64(out, token);
    serde::putU64(out, fingerprint);
    serde::putString(out, source);
    endFrame(out, p);
}

void
appendSwapReply(std::vector<uint8_t> &out, uint64_t token,
                SwapStatus status, uint64_t oldFingerprint,
                uint64_t newFingerprint, uint64_t epoch,
                const std::string &message)
{
    size_t p = beginFrame(out, FrameType::SwapReply);
    serde::putU64(out, token);
    serde::putU8(out, static_cast<uint8_t>(status));
    serde::putU64(out, oldFingerprint);
    serde::putU64(out, newFingerprint);
    serde::putU64(out, epoch);
    serde::putString(out, message);
    endFrame(out, p);
}

namespace {

/** Appends one `u8 id | u32 len | bytes` section envelope. */
void
putSection(std::vector<uint8_t> &out, StatsSection id,
           const std::vector<uint8_t> &bytes)
{
    serde::putU8(out, static_cast<uint8_t>(id));
    serde::putU32(out, static_cast<uint32_t>(bytes.size()));
    out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<uint8_t>
encodeTotals(const WireServerTotals &t)
{
    std::vector<uint8_t> s;
    serde::putU64(s, t.uptimeMicros);
    serde::putU32(s, t.workers);
    serde::putU64(s, t.activeConnections);
    serde::putU64(s, t.connectionsAccepted);
    serde::putU64(s, t.connectionsRejected);
    serde::putU64(s, t.connectionsClosed);
    serde::putU64(s, t.streamsOpened);
    serde::putU64(s, t.streamsClosed);
    serde::putU64(s, t.framesIn);
    serde::putU64(s, t.framesOut);
    serde::putU64(s, t.bytesIn);
    serde::putU64(s, t.bytesOut);
    serde::putU64(s, t.reportsSent);
    serde::putU64(s, t.protocolErrors);
    serde::putU64(s, t.idleTimeouts);
    serde::putU64(s, t.writeTimeouts);
    serde::putU64(s, t.slowConsumerDrops);
    serde::putU64(s, t.sessionsOpened);
    serde::putU64(s, t.sessionsClosed);
    serde::putU64(s, t.streamSymbols);
    serde::putU64(s, t.streamReports);
    serde::putU64(s, t.slices);
    serde::putU64(s, t.contextSwitches);
    serde::putU64(s, t.epoch);
    serde::putU64(s, t.automatonFp);
    serde::putU64(s, t.epochsDraining);
    serde::putU64(s, t.epochsRetired);
    serde::putU64(s, t.swapsCompleted);
    serde::putU64(s, t.swapsFailed);
    serde::putU64(s, t.artifactQueries);
    serde::putU64(s, t.artifactChunksServed);
    serde::putU64(s, t.artifactBytesServed);
    serde::putU64(s, t.automatonWeighted);
    serde::putU64(s, t.scoredReportsSent);
    return s;
}

/** Encoded size of one Sessions-section row / Kernels-section row. */
constexpr size_t kWireSessionBytes = 4 + 9 * 8 + 4 + 1 + 8;
constexpr size_t kWireKernelBytes = 5 * 8 + 8 + 1;

std::vector<uint8_t>
encodeSessions(const std::vector<runtime::SessionLiveStats> &sessions)
{
    std::vector<uint8_t> s;
    serde::putU32(s, static_cast<uint32_t>(sessions.size()));
    for (const runtime::SessionLiveStats &v : sessions) {
        serde::putU32(s, v.id);
        serde::putU64(s, v.stats.symbols);
        serde::putU64(s, v.stats.bytesSubmitted);
        serde::putU64(s, v.stats.chunksSubmitted);
        serde::putU64(s, v.stats.reports);
        serde::putU64(s, v.stats.slices);
        serde::putU64(s, v.stats.contextSwitches);
        serde::putU64(s, v.stats.queueFullStalls);
        serde::putU64(s, v.stats.suspensions);
        serde::putU64(s, v.queuedBytes);
        serde::putU32(s, v.queuedChunks);
        uint8_t flags = static_cast<uint8_t>(
            (v.suspended ? 1u : 0u) | (v.closing ? 2u : 0u) |
            (v.closed ? 4u : 0u));
        serde::putU8(s, flags);
        serde::putF64(s, v.symbolsPerSec);
    }
    return s;
}

std::vector<uint8_t>
encodeKernels(const std::vector<KernelDecisionStats> &kernels)
{
    std::vector<uint8_t> s;
    serde::putU32(s, static_cast<uint32_t>(kernels.size()));
    for (const KernelDecisionStats &k : kernels) {
        serde::putU64(s, k.sparseBlocks);
        serde::putU64(s, k.denseBlocks);
        serde::putU64(s, k.sparseSymbols);
        serde::putU64(s, k.denseSymbols);
        serde::putU64(s, k.kernelFlips);
        serde::putF64(s, k.densityEwma);
        serde::putU8(s, static_cast<uint8_t>(
                            static_cast<int8_t>(k.lastKernel)));
    }
    return s;
}

WireServerTotals
decodeTotals(serde::ByteReader &r)
{
    WireServerTotals t;
    t.uptimeMicros = r.u64();
    t.workers = r.u32();
    t.activeConnections = r.u64();
    t.connectionsAccepted = r.u64();
    t.connectionsRejected = r.u64();
    t.connectionsClosed = r.u64();
    t.streamsOpened = r.u64();
    t.streamsClosed = r.u64();
    t.framesIn = r.u64();
    t.framesOut = r.u64();
    t.bytesIn = r.u64();
    t.bytesOut = r.u64();
    t.reportsSent = r.u64();
    t.protocolErrors = r.u64();
    t.idleTimeouts = r.u64();
    t.writeTimeouts = r.u64();
    t.slowConsumerDrops = r.u64();
    t.sessionsOpened = r.u64();
    t.sessionsClosed = r.u64();
    t.streamSymbols = r.u64();
    t.streamReports = r.u64();
    t.slices = r.u64();
    t.contextSwitches = r.u64();
    t.epoch = r.u64();
    t.automatonFp = r.u64();
    t.epochsDraining = r.u64();
    t.epochsRetired = r.u64();
    t.swapsCompleted = r.u64();
    t.swapsFailed = r.u64();
    t.artifactQueries = r.u64();
    t.artifactChunksServed = r.u64();
    t.artifactBytesServed = r.u64();
    t.automatonWeighted = r.u64();
    t.scoredReportsSent = r.u64();
    return t;
}

std::vector<runtime::SessionLiveStats>
decodeSessions(serde::ByteReader &r)
{
    uint32_t count = r.u32();
    CA_FATAL_IF(static_cast<uint64_t>(count) * kWireSessionBytes !=
                    r.remaining(),
                "net: STATS_REPLY session count " << count
                    << " disagrees with " << r.remaining()
                    << " section bytes");
    std::vector<runtime::SessionLiveStats> out;
    out.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        runtime::SessionLiveStats v;
        v.id = r.u32();
        v.stats.symbols = r.u64();
        v.stats.bytesSubmitted = r.u64();
        v.stats.chunksSubmitted = r.u64();
        v.stats.reports = r.u64();
        v.stats.slices = r.u64();
        v.stats.contextSwitches = r.u64();
        v.stats.queueFullStalls = r.u64();
        v.stats.suspensions = r.u64();
        v.queuedBytes = r.u64();
        v.queuedChunks = r.u32();
        uint8_t flags = r.u8();
        v.suspended = (flags & 1u) != 0;
        v.closing = (flags & 2u) != 0;
        v.closed = (flags & 4u) != 0;
        v.symbolsPerSec = r.f64();
        out.push_back(v);
    }
    return out;
}

std::vector<KernelDecisionStats>
decodeKernels(serde::ByteReader &r)
{
    uint32_t count = r.u32();
    CA_FATAL_IF(static_cast<uint64_t>(count) * kWireKernelBytes !=
                    r.remaining(),
                "net: STATS_REPLY kernel count " << count
                    << " disagrees with " << r.remaining()
                    << " section bytes");
    std::vector<KernelDecisionStats> out;
    out.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        KernelDecisionStats k;
        k.sparseBlocks = r.u64();
        k.denseBlocks = r.u64();
        k.sparseSymbols = r.u64();
        k.denseSymbols = r.u64();
        k.kernelFlips = r.u64();
        k.densityEwma = r.f64();
        k.lastKernel = static_cast<int8_t>(r.u8());
        out.push_back(k);
    }
    return out;
}

} // namespace

void
appendStatsReply(std::vector<uint8_t> &out, const StatsReplyBody &body)
{
    size_t p = beginFrame(out, FrameType::StatsReply);
    serde::putU16(out, body.statsVersion);
    serde::putU64(out, body.token);
    serde::putU8(out, body.telemetryCompiled);
    serde::putU8(out, body.telemetryEnabled);
    serde::putU32(out, body.sections);
    if (body.sections & statsSectionBit(StatsSection::Totals))
        putSection(out, StatsSection::Totals, encodeTotals(body.totals));
    if (body.sections & statsSectionBit(StatsSection::Sessions))
        putSection(out, StatsSection::Sessions,
                   encodeSessions(body.sessions));
    if (body.sections & statsSectionBit(StatsSection::Metrics))
        putSection(out, StatsSection::Metrics, body.metricsSnapshot);
    if (body.sections & statsSectionBit(StatsSection::Kernels))
        putSection(out, StatsSection::Kernels,
                   encodeKernels(body.kernels));
    endFrame(out, p);
}

void
appendFrame(std::vector<uint8_t> &out, const Frame &f)
{
    switch (f.type) {
      case FrameType::Hello:
        appendHello(out, f.fingerprint, f.version);
        return;
      case FrameType::OpenStream:
        appendOpenStream(out, f.streamId);
        return;
      case FrameType::Data:
        appendData(out, f.streamId, f.data.data(), f.data.size());
        return;
      case FrameType::Flush:
        appendFlush(out, f.streamId, f.flushToken);
        return;
      case FrameType::CloseStream:
        appendCloseStream(out, f.streamId, f.symbols, f.reports);
        return;
      case FrameType::Reports:
        appendReports(out, f.streamId, f.reportBatch.data(),
                      f.reportBatch.size());
        return;
      case FrameType::ScoredReports:
        appendScoredReports(out, f.streamId, f.reportBatch.data(),
                            f.reportBatch.size());
        return;
      case FrameType::Error:
        appendError(out, f.errorCode, f.streamId, f.message);
        return;
      case FrameType::Goodbye:
        appendGoodbye(out);
        return;
      case FrameType::Stats:
        appendStats(out, f.stats.token, f.stats.sections);
        return;
      case FrameType::StatsReply:
        appendStatsReply(out, f.stats);
        return;
      case FrameType::ArtifactQuery:
        appendArtifactQuery(out, f.fingerprint);
        return;
      case FrameType::ArtifactOffer:
        appendArtifactOffer(out, f.fingerprint, f.artifactAvailable != 0,
                            f.artifactBytes, f.chunkBytes, f.chunkCount);
        return;
      case FrameType::ArtifactFetch:
        appendArtifactFetch(out, f.fingerprint, f.chunkIndex);
        return;
      case FrameType::ArtifactChunk:
        appendArtifactChunk(out, f.fingerprint, f.chunkIndex, f.chunkCount,
                            f.data.data(), f.data.size());
        return;
      case FrameType::Swap:
        appendSwap(out, f.flushToken, f.fingerprint, f.message);
        return;
      case FrameType::SwapReply:
        appendSwapReply(out, f.flushToken, f.swapStatus, f.oldFingerprint,
                        f.newFingerprint, f.epoch, f.message);
        return;
    }
    CA_THROW("appendFrame: unknown frame type "
             << static_cast<unsigned>(f.type));
}

Frame
decodePayload(FrameType type, const uint8_t *payload, size_t size)
{
    serde::ByteReader r(payload, size);
    Frame f;
    f.type = type;
    switch (type) {
      case FrameType::Hello:
        f.magic = r.u32();
        f.version = r.u16();
        f.fingerprint = r.u64();
        CA_FATAL_IF(f.magic != kHelloMagic,
                    "net: HELLO magic mismatch (got 0x" << std::hex
                        << f.magic << ")");
        break;
      case FrameType::OpenStream:
        f.streamId = r.u32();
        break;
      case FrameType::Data:
        f.streamId = r.u32();
        f.data.assign(payload + r.pos(), payload + size);
        r.skip(size - r.pos());
        break;
      case FrameType::Flush:
        f.streamId = r.u32();
        f.flushToken = r.u64();
        break;
      case FrameType::CloseStream:
        f.streamId = r.u32();
        f.symbols = r.u64();
        f.reports = r.u64();
        break;
      case FrameType::Reports: {
        f.streamId = r.u32();
        uint32_t count = r.u32();
        // The count must agree with the bytes actually present before
        // any allocation happens (hostile counts must not reserve GBs).
        CA_FATAL_IF(static_cast<uint64_t>(count) * kWireReportBytes !=
                        r.remaining(),
                    "net: REPORTS count " << count << " disagrees with "
                        << r.remaining() << " payload bytes");
        f.reportBatch.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            Report rep;
            rep.offset = r.u64();
            rep.reportId = r.u32();
            rep.state = r.u32();
            f.reportBatch.push_back(rep);
        }
        break;
      }
      case FrameType::ScoredReports: {
        f.streamId = r.u32();
        uint32_t count = r.u32();
        CA_FATAL_IF(static_cast<uint64_t>(count) * kWireScoredReportBytes
                        != r.remaining(),
                    "net: SCORED_REPORTS count " << count
                        << " disagrees with " << r.remaining()
                        << " payload bytes");
        f.reportBatch.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            Report rep;
            rep.offset = r.u64();
            rep.reportId = r.u32();
            rep.state = r.u32();
            rep.score = r.i64();
            f.reportBatch.push_back(rep);
        }
        break;
      }
      case FrameType::Error: {
        uint16_t code = r.u16();
        f.errorCode = static_cast<ErrorCode>(code);
        f.streamId = r.u32();
        f.message = r.str();
        break;
      }
      case FrameType::Goodbye:
        break;
      case FrameType::Stats:
        f.stats.token = r.u64();
        f.stats.sections = r.u32();
        break;
      case FrameType::StatsReply: {
        f.stats.statsVersion = r.u16();
        CA_FATAL_IF(f.stats.statsVersion != kStatsVersion,
                    "net: STATS_REPLY stats version "
                        << f.stats.statsVersion << " unsupported (want "
                        << kStatsVersion << ")");
        f.stats.token = r.u64();
        f.stats.telemetryCompiled = r.u8();
        f.stats.telemetryEnabled = r.u8();
        uint32_t declared = r.u32();
        f.stats.sections = 0;
        // Sections are self-describing envelopes; ids this decoder does
        // not know are skipped wholesale so a newer server can add
        // sections without breaking older pollers.
        while (!r.done()) {
            uint8_t id = r.u8();
            uint32_t len = r.u32();
            const uint8_t *body = r.bytes(len);
            serde::ByteReader s(body, len);
            switch (static_cast<StatsSection>(id)) {
              case StatsSection::Totals:
                f.stats.totals = decodeTotals(s);
                break;
              case StatsSection::Sessions:
                f.stats.sessions = decodeSessions(s);
                break;
              case StatsSection::Metrics:
                f.stats.metricsSnapshot.assign(body, body + len);
                s.skip(len);
                break;
              case StatsSection::Kernels:
                f.stats.kernels = decodeKernels(s);
                break;
              default:
                s.skip(len); // unknown section: tolerated, not surfaced
                continue;
            }
            CA_FATAL_IF(!s.done(),
                        "net: STATS_REPLY section " << unsigned{id}
                            << " carries " << s.remaining()
                            << " trailing bytes");
            if (id >= 1 && id <= 32)
                f.stats.sections |=
                    statsSectionBit(static_cast<StatsSection>(id));
        }
        CA_FATAL_IF((f.stats.sections & declared) != f.stats.sections,
                    "net: STATS_REPLY carries section bytes its mask 0x"
                        << std::hex << declared << " does not declare");
        break;
      }
      case FrameType::ArtifactQuery:
        f.fingerprint = r.u64();
        break;
      case FrameType::ArtifactOffer:
        f.fingerprint = r.u64();
        f.artifactAvailable = r.u8();
        f.artifactBytes = r.u64();
        f.chunkBytes = r.u32();
        f.chunkCount = r.u32();
        break;
      case FrameType::ArtifactFetch:
        f.fingerprint = r.u64();
        f.chunkIndex = r.u32();
        break;
      case FrameType::ArtifactChunk: {
        f.fingerprint = r.u64();
        f.chunkIndex = r.u32();
        f.chunkCount = r.u32();
        uint32_t crc = r.u32();
        f.data.assign(payload + r.pos(), payload + size);
        r.skip(size - r.pos());
        // Chunk integrity lives at the protocol layer: a corrupted or
        // truncated transfer surfaces as a clean decode error, which the
        // replication client turns into retry-on-the-next-peer.
        CA_FATAL_IF(serde::crc32(f.data.data(), f.data.size()) != crc,
                    "net: ARTIFACT_CHUNK " << f.chunkIndex
                        << " fails its CRC (corrupted transfer)");
        break;
      }
      case FrameType::Swap:
        f.flushToken = r.u64();
        f.fingerprint = r.u64();
        f.message = r.str();
        break;
      case FrameType::SwapReply: {
        f.flushToken = r.u64();
        uint8_t status = r.u8();
        CA_FATAL_IF(status < static_cast<uint8_t>(SwapStatus::Swapped) ||
                        status > static_cast<uint8_t>(SwapStatus::Failed),
                    "net: SWAP_REPLY status " << unsigned{status}
                        << " unknown");
        f.swapStatus = static_cast<SwapStatus>(status);
        f.oldFingerprint = r.u64();
        f.newFingerprint = r.u64();
        f.epoch = r.u64();
        f.message = r.str();
        break;
      }
      default:
        CA_THROW("net: unknown frame type "
                 << static_cast<unsigned>(type));
    }
    CA_FATAL_IF(!r.done(), "net: frame type "
                    << static_cast<unsigned>(type) << " carries "
                    << r.remaining() << " trailing payload bytes");
    return f;
}

FrameDecoder::FrameDecoder(uint32_t max_payload)
    : max_payload_(std::min(max_payload, kMaxFramePayload))
{
}

void
FrameDecoder::append(const uint8_t *data, size_t size)
{
    // Compact before growing: drop the already-decoded prefix so the
    // buffer stays proportional to one in-flight frame, not the stream.
    if (consumed_ > 0 && (consumed_ >= buf_.size() ||
                          consumed_ >= (64u << 10))) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<long>(consumed_));
        consumed_ = 0;
    }
    buf_.insert(buf_.end(), data, data + size);
}

std::optional<Frame>
FrameDecoder::next()
{
    size_t avail = buf_.size() - consumed_;
    if (avail < kFrameHeaderBytes)
        return std::nullopt;
    const uint8_t *p = buf_.data() + consumed_;
    uint32_t payload = 0;
    for (int i = 0; i < 4; ++i)
        payload |= uint32_t{p[i]} << (8 * i);
    CA_FATAL_IF(payload > max_payload_,
                "net: frame payload " << payload
                    << " exceeds the " << max_payload_ << "-byte bound");
    uint8_t type = p[4];
    CA_FATAL_IF(type < static_cast<uint8_t>(FrameType::Hello) ||
                    type > static_cast<uint8_t>(FrameType::ScoredReports),
                "net: unknown frame type " << unsigned{type});
    if (avail < kFrameHeaderBytes + payload)
        return std::nullopt;
    Frame f = decodePayload(static_cast<FrameType>(type),
                            p + kFrameHeaderBytes, payload);
    consumed_ += kFrameHeaderBytes + payload;
    return f;
}

uint64_t
automatonFingerprint(const MappedAutomaton &mapped)
{
    // The canonical identity lives in the persist layer now (the cluster
    // replication path validates against it without depending on net);
    // this wrapper keeps the historical net-side name.
    return persist::artifactFingerprint(mapped);
}

} // namespace ca::net
