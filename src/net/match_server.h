/**
 * @file
 * TCP match service: the network face of the multi-stream runtime.
 *
 * A MatchServer owns one StreamServer (one mapped automaton) and exposes
 * it over the wire protocol in net/protocol.h. The paper's system model
 * (§2.8-2.9) — many independent streams feeding one shared accelerator
 * through input FIFOs, reports draining through an output buffer — maps
 * onto the network as:
 *
 *   accept loop ── per-connection reader thread ──> StreamServer
 *                  per-connection writer thread <── ConnectionSink
 *
 * Robustness semantics (docs/NET.md, tests/net_test.cpp):
 *  - Admission control: connections over `maxConnections` receive
 *    ERROR(busy) and are closed; existing connections are unaffected.
 *  - Backpressure: DATA frames are submitted with the *blocking*
 *    StreamSession::submit(). A full session queue therefore parks the
 *    connection's reader thread, the kernel receive buffer fills, and
 *    TCP flow control pushes back to the client — bounded memory, no
 *    unbounded buffering, no dropped input.
 *  - Slow consumers: a client that stops draining REPORTS grows the
 *    connection's outgoing queue; past `maxOutgoingBytes` the connection
 *    is dropped (sinks must never block the simulation workers).
 *  - Timeouts: no frame within `idleTimeoutMs` ⇒ ERROR(idle_timeout) +
 *    teardown; a peer that stalls writes past `writeTimeoutMs` is
 *    dropped.
 *  - Malformed frames ⇒ ERROR(protocol_error) + teardown of that
 *    connection only; the decode layer guarantees no UB on any input.
 *  - Graceful shutdown: stop() closes the listener, drains every open
 *    session (reports are delivered and written out), says GOODBYE,
 *    then closes sockets and joins all threads.
 *
 * Cluster plane (docs/CLUSTER.md): the served automaton lives behind a
 * versioned *epoch*. swap() installs a new automaton as a fresh epoch;
 * streams already open keep draining on the epoch they started on (so a
 * stream never observes reports from two rulesets), while every stream
 * opened after the swap runs on the new one. Retired epochs are reaped
 * once their last stream closes. The server also answers
 * ARTIFACT_QUERY/FETCH for the artifacts it holds (chunked, CRC-covered),
 * and honors SWAP requests — but only on connections accepted through
 * the admin listener (opts.adminEnabled/adminPort).
 */
#ifndef CA_NET_MATCH_SERVER_H
#define CA_NET_MATCH_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "persist/artifact.h"
#include "runtime/stream_server.h"

namespace ca::net {

/** Network service configuration (on top of StreamServerOptions). */
struct MatchServerOptions
{
    /** Bind address ("127.0.0.1", "0.0.0.0", dotted quad). */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see MatchServer::port()). */
    uint16_t port = 0;
    /** Admission cap: concurrent connections beyond this get BUSY. */
    size_t maxConnections = 64;
    /** Streams one connection may hold open at once. */
    size_t maxStreamsPerConnection = 64;
    /** Per-connection frame payload bound (≤ kMaxFramePayload). */
    uint32_t maxFramePayload = 1u << 20;
    /** Outgoing-queue cap per connection before a slow consumer drops. */
    size_t maxOutgoingBytes = 64u << 20;
    /** Reports accumulated per REPORTS frame before forced emission. */
    size_t reportBatch = 512;
    /** Idle window with no inbound frame before teardown; <=0 disables. */
    int idleTimeoutMs = 60'000;
    /** Per-write stall bound once the kernel buffer is full. */
    int writeTimeoutMs = 10'000;
    /** The wrapped multi-stream runtime (workers, queues, quantum). */
    runtime::StreamServerOptions stream;

    // --- Cluster plane (docs/CLUSTER.md) -------------------------------
    /**
     * Opens a second, admin-plane listener; SWAP is honored only on
     * connections accepted there (match-plane SWAPs get
     * ERROR(permission_denied) + teardown).
     */
    bool adminEnabled = false;
    /** Admin listener port; 0 picks ephemeral (see adminPort()). */
    uint16_t adminPort = 0;
    /** Admin bind address; empty reuses bindAddress. */
    std::string adminBindAddress;
    /** Answer ARTIFACT_QUERY/FETCH (peers pull artifacts by fingerprint). */
    bool serveArtifacts = true;
    /**
     * Extra artifact source behind the epochs this server holds — e.g. a
     * fingerprint-addressed ArtifactCache directory. Returns the CAAF
     * bytes for a fingerprint, or null when unknown.
     */
    std::function<std::shared_ptr<const std::vector<uint8_t>>(uint64_t)>
        artifactResolver;
    /**
     * Resolves a SWAP request's target automaton: called with the
     * requested fingerprint (0 = unpinned) and source path (may be
     * empty); typically wired to loadArtifact / ArtifactCache::getOrFetch
     * over cluster peers. When absent, only source-path swaps are
     * honored (persist::loadArtifact). @throws CaError to fail the swap.
     */
    std::function<persist::LoadedArtifact(uint64_t fingerprint,
                                          const std::string &source)>
        swapLoader;
};

/** Aggregate network-side accounting (since construction). */
struct NetServerStats
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsRejected = 0; ///< BUSY admission rejections.
    uint64_t connectionsClosed = 0;
    uint64_t streamsOpened = 0;
    uint64_t streamsClosed = 0;
    uint64_t framesIn = 0;
    uint64_t framesOut = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    uint64_t reportsSent = 0;
    uint64_t scoredReportsSent = 0; ///< Rows sent as SCORED_REPORTS (v4).
    uint64_t protocolErrors = 0;
    uint64_t idleTimeouts = 0;
    uint64_t writeTimeouts = 0;
    uint64_t slowConsumerDrops = 0;
    // cluster plane
    uint64_t artifactQueries = 0;
    uint64_t artifactChunksServed = 0;
    uint64_t artifactBytesServed = 0;
    uint64_t swapsCompleted = 0;
    uint64_t swapsFailed = 0;
    uint64_t epochsRetired = 0;
};

/** One automaton served over TCP. */
class MatchServer
{
  public:
    /** Serves @p mapped (caller keeps it alive past the server). */
    explicit MatchServer(const MappedAutomaton &mapped,
                         const MatchServerOptions &opts = {});

    /** Co-owning variant (artifact loads). @throws CaError when null. */
    explicit MatchServer(std::shared_ptr<const MappedAutomaton> mapped,
                         const MatchServerOptions &opts = {});

    /**
     * Warm-starts from an on-disk CAAF artifact (docs/PERSIST.md): load,
     * verify, serve. @throws CaError on a missing/corrupt artifact.
     */
    static std::unique_ptr<MatchServer>
    fromArtifact(const std::string &path,
                 const MatchServerOptions &opts = {});

    /** stop()s if still running. */
    ~MatchServer();

    MatchServer(const MatchServer &) = delete;
    MatchServer &operator=(const MatchServer &) = delete;

    /** The actually bound port (resolves port 0). */
    uint16_t port() const { return port_; }

    /** The admin listener's bound port (0 when adminEnabled is off). */
    uint16_t adminPort() const { return admin_port_; }

    /** The *currently serving* automaton's HELLO fingerprint. */
    uint64_t fingerprint() const { return fingerprint_.load(); }

    /** The serving epoch number (1 at start, +1 per completed swap). */
    uint64_t epoch() const { return epoch_no_.load(); }

    /** Outcome of a swap() call. */
    struct SwapResult
    {
        uint64_t oldFingerprint = 0;
        uint64_t newFingerprint = 0;
        uint64_t epoch = 0;   ///< Epoch serving after the call.
        bool swapped = false; ///< False when the fingerprints were equal.
    };

    /**
     * Zero-downtime ruleset swap: installs @p automaton as a new serving
     * epoch. Streams already open finish on the automaton they started
     * with (drain, not migrate — a checkpoint is only meaningful on its
     * own automaton, so migrating would change reports mid-stream);
     * every OPEN_STREAM after this call lands on the new epoch. Equal
     * fingerprints are a no-op. Thread-safe; concurrent swaps serialize.
     * @p artifactBytes, when given, seeds the epoch's replication-serving
     * bytes (otherwise they are packed lazily on first ARTIFACT_QUERY).
     */
    SwapResult swap(std::shared_ptr<const MappedAutomaton> automaton,
                    std::shared_ptr<const std::vector<uint8_t>>
                        artifactBytes = nullptr);

    /** swap() from an on-disk CAAF artifact. @throws CaError on load. */
    SwapResult swapFromArtifact(const std::string &path);

    /**
     * Graceful shutdown: stop accepting, drain every connection's open
     * sessions (their reports still go out), send GOODBYE, close
     * sockets, join all threads. Idempotent.
     */
    void stop();

    NetServerStats stats() const;

    /**
     * Runtime-side totals, aggregated across every epoch this server has
     * served (live + retired + reaped) so counters stay cumulative
     * across swaps.
     */
    runtime::ServerStats streamStats() const;

    /**
     * One coherent observability snapshot (docs/OBSERVABILITY.md):
     * server totals, per-session live stats, the process metrics
     * registry image, and per-worker kernel decisions — the body both
     * the in-band STATS_REPLY and the HTTP stats endpoint serve.
     * @p sections filters which sections are filled (StatsSection bits).
     */
    StatsReplyBody statsSnapshot(uint64_t token = 0,
                                 uint32_t sections =
                                     kStatsAllSections) const;

    size_t activeConnections() const { return active_.load(); }

    const MatchServerOptions &options() const { return opts_; }

  private:
    struct Connection;
    class ConnectionSink;
    struct EpochState;

    /** One open stream: its runtime session + the epoch that owns it. */
    struct StreamRef
    {
        runtime::StreamSession *session = nullptr;
        std::shared_ptr<EpochState> epoch;
    };

    void acceptLoop(SocketFd &listener, bool admin);
    void readerLoop(Connection &c);
    void writerLoop(Connection &c);

    /** Handles one decoded frame; returns false to end the connection. */
    bool dispatchFrame(Connection &c, Frame &&f);

    /** Queues an encoded frame for the writer (drops slow consumers). */
    void enqueueFrame(Connection &c, std::vector<uint8_t> frame);

    /** Queues ERROR + marks the connection for teardown-after-flush. */
    void failConnection(Connection &c, ErrorCode code, uint32_t streamId,
                        const std::string &message);

    /** close()s every stream the connection still has open. */
    void closeConnectionStreams(Connection &c);

    void reapFinishedConnections();

    /** Frees retired epochs whose last stream has closed. */
    void reapRetiredEpochs();

    /** CAAF bytes for @p fingerprint: epochs first, then the resolver. */
    std::shared_ptr<const std::vector<uint8_t>>
    artifactBytesFor(uint64_t fingerprint);

    /** Chunk size used when serving artifacts (fits maxFramePayload). */
    uint32_t artifactChunkBytes() const;

    /** Loads a SWAP target via opts_.swapLoader / loadArtifact. */
    persist::LoadedArtifact resolveSwapTarget(uint64_t fingerprint,
                                              const std::string &source);

    MatchServerOptions opts_;

    /**
     * The epoch chain: current_ serves new streams; retired_ epochs keep
     * draining streams opened before a swap. Guarded by epoch_mutex_;
     * swaps additionally serialize on swap_mutex_ (epoch construction —
     * worker-thread spawning — happens outside epoch_mutex_).
     */
    mutable std::mutex epoch_mutex_;
    std::shared_ptr<EpochState> current_;
    std::vector<std::shared_ptr<EpochState>> retired_;
    /** Final runtime totals of reaped epochs (keeps stats cumulative). */
    runtime::ServerStats reaped_totals_;
    uint64_t next_epoch_ = 1;
    std::mutex swap_mutex_;
    std::atomic<uint64_t> fingerprint_{0}; ///< Mirror of current_.
    std::atomic<uint64_t> epoch_no_{0};    ///< Mirror of current_.

    SocketFd listener_;
    uint16_t port_ = 0;
    std::thread accept_thread_;
    SocketFd admin_listener_;
    uint16_t admin_port_ = 0;
    std::thread admin_accept_thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<size_t> active_{0};
    std::once_flag stop_once_;

    mutable std::mutex conns_mutex_;
    std::vector<std::unique_ptr<Connection>> conns_;
    std::atomic<uint64_t> next_conn_id_{0};

    mutable std::mutex stats_mutex_;
    NetServerStats stats_;

    /** Construction instant; uptimeMicros in statsSnapshot(). */
    std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();
};

} // namespace ca::net

#endif // CA_NET_MATCH_SERVER_H
