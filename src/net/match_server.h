/**
 * @file
 * TCP match service: the network face of the multi-stream runtime.
 *
 * A MatchServer owns one StreamServer (one mapped automaton) and exposes
 * it over the wire protocol in net/protocol.h. The paper's system model
 * (§2.8-2.9) — many independent streams feeding one shared accelerator
 * through input FIFOs, reports draining through an output buffer — maps
 * onto the network as:
 *
 *   accept loop ── per-connection reader thread ──> StreamServer
 *                  per-connection writer thread <── ConnectionSink
 *
 * Robustness semantics (docs/NET.md, tests/net_test.cpp):
 *  - Admission control: connections over `maxConnections` receive
 *    ERROR(busy) and are closed; existing connections are unaffected.
 *  - Backpressure: DATA frames are submitted with the *blocking*
 *    StreamSession::submit(). A full session queue therefore parks the
 *    connection's reader thread, the kernel receive buffer fills, and
 *    TCP flow control pushes back to the client — bounded memory, no
 *    unbounded buffering, no dropped input.
 *  - Slow consumers: a client that stops draining REPORTS grows the
 *    connection's outgoing queue; past `maxOutgoingBytes` the connection
 *    is dropped (sinks must never block the simulation workers).
 *  - Timeouts: no frame within `idleTimeoutMs` ⇒ ERROR(idle_timeout) +
 *    teardown; a peer that stalls writes past `writeTimeoutMs` is
 *    dropped.
 *  - Malformed frames ⇒ ERROR(protocol_error) + teardown of that
 *    connection only; the decode layer guarantees no UB on any input.
 *  - Graceful shutdown: stop() closes the listener, drains every open
 *    session (reports are delivered and written out), says GOODBYE,
 *    then closes sockets and joins all threads.
 */
#ifndef CA_NET_MATCH_SERVER_H
#define CA_NET_MATCH_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "runtime/stream_server.h"

namespace ca::net {

/** Network service configuration (on top of StreamServerOptions). */
struct MatchServerOptions
{
    /** Bind address ("127.0.0.1", "0.0.0.0", dotted quad). */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see MatchServer::port()). */
    uint16_t port = 0;
    /** Admission cap: concurrent connections beyond this get BUSY. */
    size_t maxConnections = 64;
    /** Streams one connection may hold open at once. */
    size_t maxStreamsPerConnection = 64;
    /** Per-connection frame payload bound (≤ kMaxFramePayload). */
    uint32_t maxFramePayload = 1u << 20;
    /** Outgoing-queue cap per connection before a slow consumer drops. */
    size_t maxOutgoingBytes = 64u << 20;
    /** Reports accumulated per REPORTS frame before forced emission. */
    size_t reportBatch = 512;
    /** Idle window with no inbound frame before teardown; <=0 disables. */
    int idleTimeoutMs = 60'000;
    /** Per-write stall bound once the kernel buffer is full. */
    int writeTimeoutMs = 10'000;
    /** The wrapped multi-stream runtime (workers, queues, quantum). */
    runtime::StreamServerOptions stream;
};

/** Aggregate network-side accounting (since construction). */
struct NetServerStats
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsRejected = 0; ///< BUSY admission rejections.
    uint64_t connectionsClosed = 0;
    uint64_t streamsOpened = 0;
    uint64_t streamsClosed = 0;
    uint64_t framesIn = 0;
    uint64_t framesOut = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    uint64_t reportsSent = 0;
    uint64_t protocolErrors = 0;
    uint64_t idleTimeouts = 0;
    uint64_t writeTimeouts = 0;
    uint64_t slowConsumerDrops = 0;
};

/** One automaton served over TCP. */
class MatchServer
{
  public:
    /** Serves @p mapped (caller keeps it alive past the server). */
    explicit MatchServer(const MappedAutomaton &mapped,
                         const MatchServerOptions &opts = {});

    /** Co-owning variant (artifact loads). @throws CaError when null. */
    explicit MatchServer(std::shared_ptr<const MappedAutomaton> mapped,
                         const MatchServerOptions &opts = {});

    /**
     * Warm-starts from an on-disk CAAF artifact (docs/PERSIST.md): load,
     * verify, serve. @throws CaError on a missing/corrupt artifact.
     */
    static std::unique_ptr<MatchServer>
    fromArtifact(const std::string &path,
                 const MatchServerOptions &opts = {});

    /** stop()s if still running. */
    ~MatchServer();

    MatchServer(const MatchServer &) = delete;
    MatchServer &operator=(const MatchServer &) = delete;

    /** The actually bound port (resolves port 0). */
    uint16_t port() const { return port_; }

    /** The served automaton's HELLO fingerprint. */
    uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Graceful shutdown: stop accepting, drain every connection's open
     * sessions (their reports still go out), send GOODBYE, close
     * sockets, join all threads. Idempotent.
     */
    void stop();

    NetServerStats stats() const;

    /** Runtime-side totals of the wrapped StreamServer. */
    runtime::ServerStats streamStats() const { return stream_.stats(); }

    /**
     * One coherent observability snapshot (docs/OBSERVABILITY.md):
     * server totals, per-session live stats, the process metrics
     * registry image, and per-worker kernel decisions — the body both
     * the in-band STATS_REPLY and the HTTP stats endpoint serve.
     * @p sections filters which sections are filled (StatsSection bits).
     */
    StatsReplyBody statsSnapshot(uint64_t token = 0,
                                 uint32_t sections =
                                     kStatsAllSections) const;

    size_t activeConnections() const { return active_.load(); }

    const MatchServerOptions &options() const { return opts_; }

  private:
    struct Connection;
    class ConnectionSink;

    void acceptLoop();
    void readerLoop(Connection &c);
    void writerLoop(Connection &c);

    /** Handles one decoded frame; returns false to end the connection. */
    bool dispatchFrame(Connection &c, Frame &&f);

    /** Queues an encoded frame for the writer (drops slow consumers). */
    void enqueueFrame(Connection &c, std::vector<uint8_t> frame);

    /** Queues ERROR + marks the connection for teardown-after-flush. */
    void failConnection(Connection &c, ErrorCode code, uint32_t streamId,
                        const std::string &message);

    /** close()s every stream the connection still has open. */
    void closeConnectionStreams(Connection &c);

    void reapFinishedConnections();

    /** Keeps a loaded automaton alive; null when bound by reference. */
    std::shared_ptr<const MappedAutomaton> owned_;
    MatchServerOptions opts_;
    runtime::StreamServer stream_;
    uint64_t fingerprint_ = 0;

    SocketFd listener_;
    uint16_t port_ = 0;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<size_t> active_{0};
    std::once_flag stop_once_;

    mutable std::mutex conns_mutex_;
    std::vector<std::unique_ptr<Connection>> conns_;
    uint64_t next_conn_id_ = 0;

    mutable std::mutex stats_mutex_;
    NetServerStats stats_;

    /** Construction instant; uptimeMicros in statsSnapshot(). */
    std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();
};

} // namespace ca::net

#endif // CA_NET_MATCH_SERVER_H
