#include "net/stats_listener.h"

#include <cstring>
#include <sys/socket.h>

#include "core/error.h"
#include "core/logging.h"
#include "telemetry/telemetry.h"

namespace ca::net {

StatsListener::StatsListener(Renderer render,
                             const StatsListenerOptions &opts)
    : render_(std::move(render)), opts_(opts)
{
    CA_FATAL_IF(!render_, "StatsListener: null render callback");
    listener_ = listenTcp(opts_.bindAddress, opts_.port);
    port_ = localPort(listener_);
    thread_ = std::thread([this] { acceptLoop(); });
}

StatsListener::~StatsListener()
{
    stop();
}

void
StatsListener::stop()
{
    if (stopping_.exchange(true))
        return;
    // Closing the listener fd makes the blocked accept return; the
    // loop then observes stopping_ and exits.
    listener_.close();
    if (thread_.joinable())
        thread_.join();
}

void
StatsListener::acceptLoop()
{
    while (!stopping_.load()) {
        SocketFd client;
        try {
            client = acceptTcp(listener_, 250);
        } catch (const CaError &) {
            // Fatal listener error (fd closed under us counts): done.
            return;
        }
        if (!client.valid())
            continue; // timeout / benign interruption: poll stopping_
        try {
            serveOne(std::move(client));
        } catch (const CaError &e) {
            // A misbehaving scraper must not take the endpoint down.
            CA_DEBUG("stats listener request failed: " << e.what());
        }
    }
}

void
StatsListener::serveOne(SocketFd client)
{
    // Read until the end of the request headers (or the buffer/timeout
    // bound). Only the method of the request line matters.
    std::string req;
    uint8_t buf[2048];
    while (req.size() < 16u << 10 &&
           req.find("\r\n\r\n") == std::string::npos &&
           req.find("\n\n") == std::string::npos) {
        long n = recvSome(client.get(), buf, sizeof buf,
                          opts_.readTimeoutMs);
        if (n <= 0)
            break; // EOF / timeout / error: respond to what we have
        req.append(reinterpret_cast<const char *>(buf),
                   static_cast<size_t>(n));
    }

    std::string status = "200 OK";
    std::string body;
    if (req.rfind("GET ", 0) == 0 || req.rfind("HEAD ", 0) == 0) {
        body = render_();
    } else {
        status = "400 Bad Request";
        body = "stats endpoint speaks plain GET only\n";
    }

    std::string resp = "HTTP/1.0 " + status +
        "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
        "\r\nContent-Length: " + std::to_string(body.size()) +
        "\r\nConnection: close\r\n\r\n";
    if (req.rfind("HEAD ", 0) != 0)
        resp += body;
    if (sendAll(client.get(),
                reinterpret_cast<const uint8_t *>(resp.data()),
                resp.size(), opts_.writeTimeoutMs) &&
        status[0] == '2') {
        served_.fetch_add(1);
        CA_COUNTER_ADD("ca.net.stats_scrapes", 1);
    }
    client.shutdown(SHUT_RDWR);
}

} // namespace ca::net
