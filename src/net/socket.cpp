#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/error.h"

namespace ca::net {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    CA_THROW("net: " << what << ": " << std::strerror(errno));
}

/** "localhost" and dotted quads; no DNS (keeps the layer dependency-free). */
in_addr_t
parseAddress(const std::string &host)
{
    if (host.empty() || host == "localhost")
        return htonl(INADDR_LOOPBACK);
    if (host == "0.0.0.0" || host == "*")
        return htonl(INADDR_ANY);
    in_addr addr{};
    CA_FATAL_IF(::inet_pton(AF_INET, host.c_str(), &addr) != 1,
                "net: cannot parse IPv4 address '" << host << "'");
    return addr.s_addr;
}

} // namespace

int
SocketFd::release()
{
    int fd = fd_;
    fd_ = -1;
    return fd;
}

void
SocketFd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
SocketFd::shutdown(int how)
{
    if (fd_ >= 0)
        ::shutdown(fd_, how); // best effort; ENOTCONN is fine
}

SocketFd
listenTcp(const std::string &address, uint16_t port, int backlog)
{
    SocketFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = parseAddress(address);
    sa.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) != 0)
        throwErrno("bind " + address + ":" + std::to_string(port));
    if (::listen(fd.get(), backlog) != 0)
        throwErrno("listen");
    return fd;
}

uint16_t
localPort(const SocketFd &fd)
{
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&sa), &len) != 0)
        throwErrno("getsockname");
    return ntohs(sa.sin_port);
}

SocketFd
acceptTcp(const SocketFd &listener, int timeout_ms)
{
    pollfd p{listener.get(), POLLIN, 0};
    int rc = ::poll(&p, 1, timeout_ms);
    if (rc == 0)
        return SocketFd();
    if (rc < 0) {
        if (errno == EINTR)
            return SocketFd();
        throwErrno("poll(listener)");
    }
    int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd < 0) {
        // A peer that vanished between poll and accept is not fatal.
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK || errno == EINVAL || errno == EBADF)
            return SocketFd();
        throwErrno("accept");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Nonblocking + poll everywhere: a blocking send() would make the
    // writer's timeout unenforceable when the peer stops reading.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    return SocketFd(fd);
}

SocketFd
connectTcp(const std::string &host, uint16_t port, int timeout_ms)
{
    SocketFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");

    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = parseAddress(host);
    sa.sin_port = htons(port);

    // Nonblocking connect + poll gives the timeout; then back to blocking.
    int flags = ::fcntl(fd.get(), F_GETFL, 0);
    ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa));
    if (rc != 0 && errno != EINPROGRESS)
        throwErrno("connect " + host + ":" + std::to_string(port));
    if (rc != 0) {
        pollfd p{fd.get(), POLLOUT, 0};
        rc = ::poll(&p, 1, timeout_ms);
        CA_FATAL_IF(rc == 0, "net: connect to " << host << ":" << port
                                 << " timed out");
        if (rc < 0)
            throwErrno("poll(connect)");
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        CA_FATAL_IF(err != 0, "net: connect to " << host << ":" << port
                                  << ": " << std::strerror(err));
    }
    // Stays nonblocking (see acceptTcp): timeouts come from poll().
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd p{fd, POLLIN, 0};
    int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
        if (errno == EINTR)
            return false;
        throwErrno("poll(read)");
    }
    return rc > 0;
}

bool
waitWritable(int fd, int timeout_ms)
{
    pollfd p{fd, POLLOUT, 0};
    int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
        if (errno == EINTR)
            return false;
        throwErrno("poll(write)");
    }
    return rc > 0 && (p.revents & POLLOUT);
}

bool
sendAll(int fd, const uint8_t *data, size_t size, int timeout_ms)
{
    size_t sent = 0;
    while (sent < size) {
        long n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR)) {
            if (!waitWritable(fd, timeout_ms))
                return false; // write timeout
            continue;
        }
        return false; // peer reset / closed
    }
    return true;
}

long
recvSome(int fd, uint8_t *data, size_t size, int timeout_ms)
{
    if (!waitReadable(fd, timeout_ms))
        return -1;
    long n = ::recv(fd, data, size, 0);
    if (n > 0)
        return n;
    if (n == 0)
        return 0;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        return -1;
    return -2;
}

} // namespace ca::net
