/**
 * @file
 * Wire protocol for the network match service (docs/NET.md).
 *
 * The paper's deployment model (§2.8-2.9) is a shared accelerator fed by
 * input FIFOs and drained through report buffers; src/net puts that FIFO
 * on a TCP socket. This header defines the versioned, length-prefixed
 * binary framing both sides speak, built on the same byte-order-explicit
 * serde primitives the persist layer uses — so a frame encoded on any
 * host decodes on any other.
 *
 * Frame layout (little-endian, core/serde.h):
 *
 *   u32 payloadSize | u8 type | payload[payloadSize]
 *
 * Payloads per type (all fields present in both directions; a sender
 * zeroes fields that only matter on the reply):
 *
 *   HELLO        u32 magic "CANP" | u16 version | u64 fingerprint
 *   OPEN_STREAM  u32 streamId
 *   DATA         u32 streamId | bytes (rest of payload)
 *   FLUSH        u32 streamId | u64 token
 *   CLOSE_STREAM u32 streamId | u64 symbols | u64 reports
 *   REPORTS      u32 streamId | u32 count |
 *                count x (u64 offset | u32 reportId | u32 state)
 *   SCORED_REPORTS (v4)
 *                u32 streamId | u32 count |
 *                count x (u64 offset | u32 reportId | u32 state |
 *                i64 score)
 *   ERROR        u16 code | u32 streamId (kConnectionStream = whole
 *                connection) | string message
 *   GOODBYE      (empty)
 *   STATS        u64 token | u32 sections (StatsSection bitmask)
 *   STATS_REPLY  u16 statsVersion | u64 token | u8 telemetryCompiled |
 *                u8 telemetryEnabled | u32 sections | per present
 *                section: u8 id | u32 byteLen | bytes (unknown ids are
 *                skipped — see docs/OBSERVABILITY.md for the layouts)
 *
 * Cluster frames (v3, docs/CLUSTER.md) — artifact replication by
 * fingerprint and the zero-downtime ruleset swap:
 *
 *   ARTIFACT_QUERY  u64 fingerprint
 *   ARTIFACT_OFFER  u64 fingerprint | u8 available | u64 totalBytes |
 *                   u32 chunkBytes | u32 chunkCount
 *   ARTIFACT_FETCH  u64 fingerprint | u32 chunkIndex
 *   ARTIFACT_CHUNK  u64 fingerprint | u32 chunkIndex | u32 chunkCount |
 *                   u32 crc32 | bytes (rest of payload; the decoder
 *                   verifies the CRC — a corrupted chunk throws)
 *   SWAP            u64 token | u64 fingerprint | string source
 *   SWAP_REPLY      u64 token | u8 status (SwapStatus) |
 *                   u64 oldFingerprint | u64 newFingerprint | u64 epoch |
 *                   string message
 *
 * Safety contract (mirrors the persist layer's): every decode is
 * bounds-checked, an oversized/truncated/unknown/ill-formed frame throws
 * CaError — never UB — and the server answers with ERROR + connection
 * teardown while continuing to serve other connections
 * (tests/net_test.cpp, tests/fuzz_test.cpp).
 */
#ifndef CA_NET_PROTOCOL_H
#define CA_NET_PROTOCOL_H

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "baseline/nfa_engine.h"
#include "compiler/mapping.h"
#include "runtime/stream_session.h"

namespace ca::net {

/** "CANP" (Cache Automaton Network Protocol) little-endian fourcc. */
constexpr uint32_t kHelloMagic = 0x504e4143u;
/**
 * Bump on any framing change. v4 adds SCORED_REPORTS (docs/SCORING.md);
 * servers still accept v3 HELLOs — such connections simply receive
 * plain REPORTS frames (scores elided), so pre-scoring clients are
 * unaffected.
 */
constexpr uint16_t kProtocolVersion = 4;
/** Oldest HELLO version a server still accepts. */
constexpr uint16_t kMinProtocolVersion = 3;
/**
 * Absolute payload-size ceiling any decoder accepts; connections may
 * negotiate (configure) a smaller bound. Caps hostile length prefixes so
 * a 4-byte header can never make a server allocate gigabytes.
 */
constexpr uint32_t kMaxFramePayload = 16u << 20;
/** streamId value in ERROR frames that refers to the whole connection. */
constexpr uint32_t kConnectionStream = 0xffffffffu;
/** Fixed bytes before the payload: u32 size + u8 type. */
constexpr size_t kFrameHeaderBytes = 5;
/** Encoded size of one report in a REPORTS frame. */
constexpr size_t kWireReportBytes = 16;
/** Encoded size of one report in a SCORED_REPORTS frame (v4). */
constexpr size_t kWireScoredReportBytes = 24;

enum class FrameType : uint8_t {
    Hello = 1,
    OpenStream = 2,
    Data = 3,
    Flush = 4,
    CloseStream = 5,
    Reports = 6,
    Error = 7,
    Goodbye = 8,
    Stats = 9,      ///< Client polls a live server snapshot (v2).
    StatsReply = 10, ///< Server's snapshot answer (v2).
    ArtifactQuery = 11, ///< Does the peer hold this fingerprint? (v3)
    ArtifactOffer = 12, ///< Peer's answer: availability + chunking (v3).
    ArtifactFetch = 13, ///< Request one chunk of an offered artifact (v3).
    ArtifactChunk = 14, ///< One CRC-covered artifact chunk (v3).
    Swap = 15,          ///< Admin: hot-swap the served ruleset (v3).
    SwapReply = 16,     ///< Swap outcome: old/new fingerprints + epoch (v3).
    ScoredReports = 17, ///< REPORTS with per-report scores (v4).
};

/** Version of the STATS_REPLY payload layout (independent of frames). */
constexpr uint16_t kStatsVersion = 3;

/** SWAP_REPLY outcome codes. */
enum class SwapStatus : uint8_t {
    Swapped = 1,   ///< New epoch installed; old sessions keep draining.
    Unchanged = 2, ///< Target fingerprint was already serving (no-op).
    Failed = 3,    ///< Load/validation failed; the automaton is unchanged.
};

/** STATS_REPLY section ids; the request mask is bit (id - 1). */
enum class StatsSection : uint8_t {
    Totals = 1,   ///< WireServerTotals.
    Sessions = 2, ///< Per-session live stats table.
    Metrics = 3,  ///< telemetry::MetricsSnapshot binary image (CASN).
    Kernels = 4,  ///< Per-worker kernel-decision counters.
};

/** Request mask selecting every section. */
constexpr uint32_t kStatsAllSections = 0xfu;

/** Mask bit for one section. */
constexpr uint32_t
statsSectionBit(StatsSection s)
{
    return 1u << (static_cast<uint32_t>(s) - 1);
}

/** ERROR frame codes (docs/NET.md lists the teardown semantics). */
enum class ErrorCode : uint16_t {
    ProtocolError = 1,       ///< Malformed/unexpected frame: teardown.
    VersionMismatch = 2,     ///< HELLO version unsupported: teardown.
    FingerprintMismatch = 3, ///< Client expected another automaton.
    Busy = 4,                ///< Connection cap reached: admission reject.
    UnknownStream = 5,       ///< Frame names a stream never opened.
    DuplicateStream = 6,     ///< OPEN_STREAM reusing a live id.
    StreamLimit = 7,         ///< Per-connection stream cap reached.
    IdleTimeout = 8,         ///< No frame within the idle window.
    SlowConsumer = 9,        ///< Client not draining REPORTS: teardown.
    Shutdown = 10,           ///< Server is draining for shutdown.
    PermissionDenied = 11,   ///< SWAP outside the admin plane: teardown.
    ArtifactUnavailable = 12, ///< FETCH for a fingerprint not held here.
};

/** Printable name for diagnostics ("busy", "protocol_error", ...). */
std::string errorCodeName(ErrorCode code);

/**
 * STATS_REPLY Totals section: the server's aggregate counters,
 * flattened to wire-defined fields (mirrors net::NetServerStats +
 * runtime::ServerStats, which live above this header in the layering).
 */
struct WireServerTotals
{
    uint64_t uptimeMicros = 0;
    uint32_t workers = 0;
    uint64_t activeConnections = 0;
    // net-side (NetServerStats order)
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsRejected = 0;
    uint64_t connectionsClosed = 0;
    uint64_t streamsOpened = 0;
    uint64_t streamsClosed = 0;
    uint64_t framesIn = 0;
    uint64_t framesOut = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    uint64_t reportsSent = 0;
    uint64_t protocolErrors = 0;
    uint64_t idleTimeouts = 0;
    uint64_t writeTimeouts = 0;
    uint64_t slowConsumerDrops = 0;
    // runtime-side (runtime::ServerStats order)
    uint64_t sessionsOpened = 0;
    uint64_t sessionsClosed = 0;
    uint64_t streamSymbols = 0;
    uint64_t streamReports = 0;
    uint64_t slices = 0;
    uint64_t contextSwitches = 0;
    // cluster-side (statsVersion 2, docs/CLUSTER.md)
    uint64_t epoch = 0;               ///< Serving epoch (bumps per swap).
    uint64_t automatonFp = 0;         ///< Serving automaton fingerprint.
    uint64_t epochsDraining = 0;      ///< Retired epochs still draining.
    uint64_t epochsRetired = 0;       ///< Retired epochs fully reaped.
    uint64_t swapsCompleted = 0;
    uint64_t swapsFailed = 0;
    uint64_t artifactQueries = 0;     ///< ARTIFACT_QUERY frames answered.
    uint64_t artifactChunksServed = 0;
    uint64_t artifactBytesServed = 0;
    // scoring-side (statsVersion 3, docs/SCORING.md)
    uint64_t automatonWeighted = 0;   ///< 1 when serving a scored automaton.
    uint64_t scoredReportsSent = 0;   ///< Rows sent in SCORED_REPORTS frames.
};

/**
 * Decoded STATS_REPLY payload (also carries a STATS request's fields —
 * token and sections — when it rides in a Frame of type Stats).
 * Sections absent from `sections` keep their empty/zero defaults, which
 * is also how a telemetry-off or section-filtered server degrades.
 */
struct StatsReplyBody
{
    uint16_t statsVersion = kStatsVersion;
    uint64_t token = 0;
    uint8_t telemetryCompiled = 0; ///< CA_TELEMETRY macro on the server.
    uint8_t telemetryEnabled = 0;  ///< telemetry::enabled() right now.
    uint32_t sections = 0;         ///< StatsSection bits present below.
    WireServerTotals totals;
    std::vector<runtime::SessionLiveStats> sessions;
    /** telemetry::MetricsSnapshot::serialize() image (self-versioned). */
    std::vector<uint8_t> metricsSnapshot;
    std::vector<KernelDecisionStats> kernels;
};

/**
 * One decoded frame, as a flat tagged struct (only the fields of the
 * frame's type are meaningful; the rest keep their zero defaults).
 */
struct Frame
{
    FrameType type = FrameType::Hello;
    uint32_t streamId = 0;

    // Hello
    uint32_t magic = 0;
    uint16_t version = 0;
    uint64_t fingerprint = 0;

    // Data
    std::vector<uint8_t> data;

    // Flush
    uint64_t flushToken = 0;

    // CloseStream (summary filled on the server's acknowledgement)
    uint64_t symbols = 0;
    uint64_t reports = 0;

    // Reports
    std::vector<Report> reportBatch;

    // Error
    ErrorCode errorCode = ErrorCode::ProtocolError;
    std::string message;

    // Stats (token/sections double as the request) / StatsReply
    StatsReplyBody stats;

    // ArtifactQuery/Offer/Fetch/Chunk share `fingerprint`; a chunk's
    // bytes ride in `data`.
    uint8_t artifactAvailable = 0; ///< Offer: peer holds the artifact.
    uint64_t artifactBytes = 0;    ///< Offer: total artifact size.
    uint32_t chunkBytes = 0;       ///< Offer: chunk size of the split.
    uint32_t chunkIndex = 0;       ///< Fetch/Chunk: which chunk.
    uint32_t chunkCount = 0;       ///< Offer/Chunk: chunks in total.

    // Swap (token rides in `flushToken`, source path in `message`) /
    // SwapReply (message in `message`).
    SwapStatus swapStatus = SwapStatus::Failed;
    uint64_t oldFingerprint = 0;
    uint64_t newFingerprint = 0;
    uint64_t epoch = 0;
};

// --- Encoders (append one whole frame to @p out) -----------------------

void appendHello(std::vector<uint8_t> &out, uint64_t fingerprint,
                 uint16_t version = kProtocolVersion);
void appendOpenStream(std::vector<uint8_t> &out, uint32_t streamId);
void appendData(std::vector<uint8_t> &out, uint32_t streamId,
                const uint8_t *data, size_t size);
void appendFlush(std::vector<uint8_t> &out, uint32_t streamId,
                 uint64_t token);
void appendCloseStream(std::vector<uint8_t> &out, uint32_t streamId,
                       uint64_t symbols = 0, uint64_t reports = 0);
void appendReports(std::vector<uint8_t> &out, uint32_t streamId,
                   const Report *reports, size_t count);
/** v4: REPORTS rows extended with each report's accumulated score. */
void appendScoredReports(std::vector<uint8_t> &out, uint32_t streamId,
                         const Report *reports, size_t count);
void appendError(std::vector<uint8_t> &out, ErrorCode code,
                 uint32_t streamId, const std::string &message);
void appendGoodbye(std::vector<uint8_t> &out);
void appendStats(std::vector<uint8_t> &out, uint64_t token,
                 uint32_t sections = kStatsAllSections);
void appendStatsReply(std::vector<uint8_t> &out,
                      const StatsReplyBody &body);
void appendArtifactQuery(std::vector<uint8_t> &out, uint64_t fingerprint);
void appendArtifactOffer(std::vector<uint8_t> &out, uint64_t fingerprint,
                         bool available, uint64_t totalBytes,
                         uint32_t chunkBytes, uint32_t chunkCount);
void appendArtifactFetch(std::vector<uint8_t> &out, uint64_t fingerprint,
                         uint32_t chunkIndex);
/** Computes and embeds the chunk's CRC32 over @p data. */
void appendArtifactChunk(std::vector<uint8_t> &out, uint64_t fingerprint,
                         uint32_t chunkIndex, uint32_t chunkCount,
                         const uint8_t *data, size_t size);
void appendSwap(std::vector<uint8_t> &out, uint64_t token,
                uint64_t fingerprint, const std::string &source);
void appendSwapReply(std::vector<uint8_t> &out, uint64_t token,
                     SwapStatus status, uint64_t oldFingerprint,
                     uint64_t newFingerprint, uint64_t epoch,
                     const std::string &message);

/** Encodes @p f generically (tests, fuzzing drivers). */
void appendFrame(std::vector<uint8_t> &out, const Frame &f);

// --- Decoder ------------------------------------------------------------

/**
 * Incremental frame decoder over a socket byte stream. Feed raw bytes
 * with append(); next() yields completed frames in order, returns
 * nullopt while a frame is still partial, and throws CaError on any
 * malformed frame (oversized length, unknown type, payload that does not
 * parse exactly). After a throw the stream is unrecoverable — the owner
 * must tear the connection down (framing has lost sync by definition).
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(uint32_t max_payload = kMaxFramePayload);

    /** Buffers @p size raw stream bytes. */
    void append(const uint8_t *data, size_t size);

    /** Decodes the next complete frame, if the buffer holds one. */
    std::optional<Frame> next();

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - consumed_; }

  private:
    uint32_t max_payload_;
    std::vector<uint8_t> buf_;
    /** Prefix of buf_ already decoded (compacted opportunistically). */
    size_t consumed_ = 0;
};

/** Decodes a payload given its type (exact-consumption checked). */
Frame decodePayload(FrameType type, const uint8_t *payload, size_t size);

// --- Automaton fingerprint ---------------------------------------------

/**
 * Content fingerprint of a mapped automaton, as exchanged in HELLO: the
 * FNV-1a 64 hash of the automaton's canonical artifact serialization
 * (DSGN + NFA + PLAC sections under a fixed META). Deterministic across
 * hosts and across load paths — a server that compiled its ruleset and
 * one that warm-started from a CAAF artifact of the same compile produce
 * the same fingerprint, so clients can pin the exact automaton they
 * expect to be matched against.
 */
uint64_t automatonFingerprint(const MappedAutomaton &mapped);

} // namespace ca::net

#endif // CA_NET_PROTOCOL_H
