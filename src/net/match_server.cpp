#include "net/match_server.h"

#include <chrono>
#include <fstream>
#include <sys/socket.h>

#include "core/error.h"
#include "core/logging.h"
#include "persist/artifact.h"
#include "telemetry/runtime.h"
#include "telemetry/snapshot.h"
#include "telemetry/telemetry.h"

namespace ca::net {

using Clock = std::chrono::steady_clock;

/**
 * Per-connection state. The reader thread owns the protocol state
 * machine; the writer thread owns the socket's send side; simulation
 * workers reach the connection only through ConnectionSink/enqueueFrame.
 */
struct MatchServer::Connection
{
    uint64_t id = 0;
    SocketFd fd;
    std::thread reader;
    std::thread writer;

    // --- Outgoing frame queue (reader + workers feed, writer drains) --
    std::mutex out_mutex;
    std::condition_variable out_cv;
    std::deque<std::vector<uint8_t>> outq;
    size_t outBytes = 0;
    /** Writer exits once the queue is empty (graceful teardown). */
    bool drainStop = false;

    /** Hard failure (slow consumer, write error): drop queue, die now. */
    std::atomic<bool> failed{false};
    /** Graceful end requested (GOODBYE, protocol error, timeout). */
    bool ending = false;

    // --- Protocol state (reader thread only) --------------------------
    bool helloDone = false;
    /**
     * Negotiated protocol version (the client's HELLO version, within
     * [kMinProtocolVersion, kProtocolVersion]). Written once during the
     * handshake, before any stream can open, then read-only.
     */
    uint16_t version = kProtocolVersion;
    /** Accepted on the admin listener: SWAP is honored here. */
    bool isAdmin = false;

    /**
     * Live client streamId -> {runtime session, owning epoch} (reader +
     * stop()). Holding the epoch's shared_ptr here is what keeps a
     * retired epoch alive until its last stream closes.
     */
    std::mutex streams_mutex;
    std::map<uint32_t, StreamRef> streams;

    std::unique_ptr<ConnectionSink> sink;

    /** Reader exited; connection is reapable. */
    std::atomic<bool> done{false};
};

/**
 * Bridges one connection's sessions back onto the wire: translates the
 * runtime's session ids to the client's stream ids and turns each
 * in-order report batch into REPORTS frames. Never blocks (report_sink.h
 * forbids it) — a consumer that cannot keep up trips the outgoing-queue
 * cap and is dropped instead.
 */
class MatchServer::ConnectionSink final : public runtime::ReportSink
{
  public:
    ConnectionSink(MatchServer &server, Connection &conn)
        : server_(server), conn_(conn)
    {
    }

    void
    registerStream(uint32_t runtime_id, uint32_t client_id, bool scored)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ids_[runtime_id] = StreamIds{client_id, scored};
    }

    void
    unregisterStream(uint32_t runtime_id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ids_.erase(runtime_id);
    }

    void
    onReports(uint32_t sessionId, const Report *reports,
              size_t count) override
    {
        uint32_t client_id;
        bool scored;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = ids_.find(sessionId);
            if (it == ids_.end())
                return; // stream already torn down
            client_id = it->second.clientId;
            scored = it->second.scored;
        }
        // Scored streams get SCORED_REPORTS only on v4 connections; a
        // v3 peer receives plain REPORTS with the same rows (scores
        // elided), so the report set is independent of the version.
        const bool wire_scored = scored && conn_.version >= 4;
        const size_t row_bytes =
            wire_scored ? kWireScoredReportBytes : kWireReportBytes;
        size_t max_per_frame = std::min<size_t>(
            std::max<size_t>(server_.opts_.reportBatch, 1),
            (server_.opts_.maxFramePayload - 8) / row_bytes);
        for (size_t i = 0; i < count; i += max_per_frame) {
            size_t n = std::min(max_per_frame, count - i);
            std::vector<uint8_t> frame;
            frame.reserve(kFrameHeaderBytes + 8 + n * row_bytes);
            if (wire_scored)
                appendScoredReports(frame, client_id, reports + i, n);
            else
                appendReports(frame, client_id, reports + i, n);
            server_.enqueueFrame(conn_, std::move(frame));
        }
        {
            std::lock_guard<std::mutex> lock(server_.stats_mutex_);
            server_.stats_.reportsSent += count;
            if (wire_scored)
                server_.stats_.scoredReportsSent += count;
        }
        CA_COUNTER_ADD("ca.net.reports_sent", count);
        if (wire_scored)
            CA_COUNTER_ADD("ca.net.scored_reports_sent", count);
    }

  private:
    struct StreamIds
    {
        uint32_t clientId = 0;
        bool scored = false; ///< The stream's epoch automaton is weighted.
    };

    MatchServer &server_;
    Connection &conn_;
    std::mutex mutex_;
    std::map<uint32_t, StreamIds> ids_;
};

/**
 * One serving generation: an automaton, its fingerprint, a dedicated
 * StreamServer, and (lazily) the canonical CAAF bytes served to peers.
 * The current epoch takes every new stream; a retired epoch lives until
 * the connections' StreamRefs release it, then is reaped.
 */
struct MatchServer::EpochState
{
    uint64_t epoch = 0;
    uint64_t fingerprint = 0;
    /** Keeps a loaded automaton alive; null when bound by reference. */
    std::shared_ptr<const MappedAutomaton> owned;
    const MappedAutomaton *mapped = nullptr;
    std::unique_ptr<runtime::StreamServer> stream;

    /** Replication-serving bytes, packed on first demand. */
    std::mutex bytes_mutex;
    std::shared_ptr<const std::vector<uint8_t>> artifactBytes;

    /** The canonical artifact bytes for this epoch's automaton. */
    std::shared_ptr<const std::vector<uint8_t>>
    bytes()
    {
        std::lock_guard<std::mutex> lock(bytes_mutex);
        if (!artifactBytes)
            artifactBytes = std::make_shared<const std::vector<uint8_t>>(
                persist::packArtifact(*mapped, buildConfigImage(*mapped)));
        return artifactBytes;
    }
};

namespace {

const MappedAutomaton &
requireAutomaton(const std::shared_ptr<const MappedAutomaton> &mapped)
{
    CA_FATAL_IF(!mapped, "MatchServer: null mapped automaton");
    return *mapped;
}

void
accumulate(runtime::ServerStats &into, const runtime::ServerStats &s)
{
    into.sessionsOpened += s.sessionsOpened;
    into.sessionsClosed += s.sessionsClosed;
    into.symbols += s.symbols;
    into.reports += s.reports;
    into.slices += s.slices;
    into.contextSwitches += s.contextSwitches;
}

} // namespace

MatchServer::MatchServer(const MappedAutomaton &mapped,
                         const MatchServerOptions &opts)
    : opts_(opts)
{
    CA_TRACE_SCOPE_CAT("ca.net.server_start", "ca.net");
    opts_.maxFramePayload =
        std::min(std::max(opts_.maxFramePayload, 64u), kMaxFramePayload);
    if (opts_.maxConnections == 0)
        opts_.maxConnections = 1;
    if (opts_.maxStreamsPerConnection == 0)
        opts_.maxStreamsPerConnection = 1;

    auto first = std::make_shared<EpochState>();
    first->epoch = next_epoch_++;
    first->mapped = &mapped;
    first->fingerprint = automatonFingerprint(mapped);
    first->stream =
        std::make_unique<runtime::StreamServer>(mapped, opts_.stream);
    fingerprint_.store(first->fingerprint);
    epoch_no_.store(first->epoch);
    current_ = std::move(first);

    listener_ = listenTcp(opts_.bindAddress, opts_.port);
    port_ = localPort(listener_);
    accept_thread_ =
        std::thread([this] { acceptLoop(listener_, false); });
    if (opts_.adminEnabled) {
        const std::string &bind = opts_.adminBindAddress.empty()
            ? opts_.bindAddress
            : opts_.adminBindAddress;
        admin_listener_ = listenTcp(bind, opts_.adminPort);
        admin_port_ = localPort(admin_listener_);
        admin_accept_thread_ =
            std::thread([this] { acceptLoop(admin_listener_, true); });
    }
}

MatchServer::MatchServer(std::shared_ptr<const MappedAutomaton> mapped,
                         const MatchServerOptions &opts)
    : MatchServer(requireAutomaton(mapped), opts)
{
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    current_->owned = std::move(mapped);
}

std::unique_ptr<MatchServer>
MatchServer::fromArtifact(const std::string &path,
                          const MatchServerOptions &opts)
{
    CA_TRACE_SCOPE_CAT("ca.net.server_from_artifact", "ca.net");
    // Keep the file's own bytes: they are what peers replicate, and the
    // fingerprint ignores META, so the original file serves as-is.
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    CA_FATAL_IF(!is, "net: cannot open artifact " << path);
    std::streamsize size = is.tellg();
    CA_FATAL_IF(size < 0, "net: cannot stat artifact " << path);
    auto bytes = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(size));
    is.seekg(0);
    is.read(reinterpret_cast<char *>(bytes->data()), size);
    CA_FATAL_IF(!is, "net: short read from artifact " << path);

    persist::LoadedArtifact loaded = persist::loadArtifactBytes(*bytes);
    auto server = std::make_unique<MatchServer>(std::move(loaded.automaton),
                                                opts);
    {
        std::lock_guard<std::mutex> lock(server->epoch_mutex_);
        std::lock_guard<std::mutex> block(server->current_->bytes_mutex);
        server->current_->artifactBytes = std::move(bytes);
    }
    return server;
}

MatchServer::~MatchServer()
{
    stop();
}

void
MatchServer::stop()
{
    std::call_once(stop_once_, [this] {
        stopping_.store(true);
        // Unblock and retire the accept loops first: no new admissions
        // while connections drain.
        listener_.shutdown(SHUT_RDWR);
        admin_listener_.shutdown(SHUT_RDWR);
        if (accept_thread_.joinable())
            accept_thread_.join();
        if (admin_accept_thread_.joinable())
            admin_accept_thread_.join();
        listener_.close();
        admin_listener_.close();

        // Graceful per-connection drain: stop reading (EOF for the
        // reader), which makes each reader close its open sessions,
        // flush queued REPORTS + GOODBYE, and only then close sockets.
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            for (auto &c : conns_)
                if (!c->done.load())
                    c->fd.shutdown(SHUT_RD);
        }
        std::vector<std::unique_ptr<Connection>> finished;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            finished.swap(conns_);
        }
        for (auto &c : finished)
            if (c->reader.joinable())
                c->reader.join();
    });
}

NetServerStats
MatchServer::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

runtime::ServerStats
MatchServer::streamStats() const
{
    std::vector<std::shared_ptr<EpochState>> epochs;
    runtime::ServerStats total;
    {
        std::lock_guard<std::mutex> lock(epoch_mutex_);
        total = reaped_totals_;
        epochs.push_back(current_);
        epochs.insert(epochs.end(), retired_.begin(), retired_.end());
    }
    for (const auto &e : epochs)
        accumulate(total, e->stream->stats());
    return total;
}

MatchServer::SwapResult
MatchServer::swap(std::shared_ptr<const MappedAutomaton> automaton,
                  std::shared_ptr<const std::vector<uint8_t>> artifactBytes)
{
    CA_FATAL_IF(!automaton, "MatchServer: swap to a null automaton");
    CA_TRACE_SCOPE_CAT("ca.net.swap", "ca.net");
    // One swap at a time; epoch construction (worker-thread spawning)
    // stays outside epoch_mutex_ so readers never wait on it.
    std::lock_guard<std::mutex> swap_lock(swap_mutex_);

    SwapResult r;
    r.newFingerprint = automatonFingerprint(*automaton);
    {
        std::lock_guard<std::mutex> lock(epoch_mutex_);
        r.oldFingerprint = current_->fingerprint;
        if (r.newFingerprint == current_->fingerprint) {
            // Same compiled automaton: installing a new epoch would only
            // churn worker pools for identical reports.
            r.epoch = current_->epoch;
            r.swapped = false;
            return r;
        }
    }

    auto next = std::make_shared<EpochState>();
    next->fingerprint = r.newFingerprint;
    next->mapped = automaton.get();
    next->owned = std::move(automaton);
    next->artifactBytes = std::move(artifactBytes);
    next->stream = std::make_unique<runtime::StreamServer>(next->owned,
                                                           opts_.stream);
    {
        std::lock_guard<std::mutex> lock(epoch_mutex_);
        next->epoch = next_epoch_++;
        r.epoch = next->epoch;
        retired_.push_back(std::move(current_));
        current_ = std::move(next);
        fingerprint_.store(current_->fingerprint);
        epoch_no_.store(current_->epoch);
    }
    r.swapped = true;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.swapsCompleted;
    }
    CA_COUNTER_ADD("ca.cluster.swaps_completed", 1);
    CA_INFO("net: swapped automaton " << std::hex << r.oldFingerprint
                                      << " -> " << r.newFingerprint
                                      << std::dec << " (epoch " << r.epoch
                                      << ")");
    reapRetiredEpochs();
    return r;
}

MatchServer::SwapResult
MatchServer::swapFromArtifact(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    CA_FATAL_IF(!is, "net: cannot open artifact " << path);
    std::streamsize size = is.tellg();
    CA_FATAL_IF(size < 0, "net: cannot stat artifact " << path);
    auto bytes = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(size));
    is.seekg(0);
    is.read(reinterpret_cast<char *>(bytes->data()), size);
    CA_FATAL_IF(!is, "net: short read from artifact " << path);
    persist::LoadedArtifact loaded = persist::loadArtifactBytes(*bytes);
    return swap(std::move(loaded.automaton), std::move(bytes));
}

void
MatchServer::reapRetiredEpochs()
{
    // A retired epoch is dead once the connections' StreamRefs released
    // it (use_count back to our own reference). Destruction — joining
    // the epoch's worker pool — happens outside epoch_mutex_.
    std::vector<std::shared_ptr<EpochState>> dead;
    {
        std::lock_guard<std::mutex> lock(epoch_mutex_);
        for (auto it = retired_.begin(); it != retired_.end();) {
            if (it->use_count() == 1) {
                accumulate(reaped_totals_, (*it)->stream->stats());
                dead.push_back(std::move(*it));
                it = retired_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &e : dead) {
        e.reset();
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.epochsRetired;
        }
        CA_COUNTER_ADD("ca.cluster.epochs_retired", 1);
    }
}

std::shared_ptr<const std::vector<uint8_t>>
MatchServer::artifactBytesFor(uint64_t fingerprint)
{
    std::vector<std::shared_ptr<EpochState>> epochs;
    {
        std::lock_guard<std::mutex> lock(epoch_mutex_);
        epochs.push_back(current_);
        epochs.insert(epochs.end(), retired_.begin(), retired_.end());
    }
    for (const auto &e : epochs)
        if (e->fingerprint == fingerprint)
            return e->bytes();
    if (opts_.artifactResolver)
        return opts_.artifactResolver(fingerprint);
    return nullptr;
}

uint32_t
MatchServer::artifactChunkBytes() const
{
    // Leave generous header room inside the negotiated payload bound;
    // 256 KiB keeps per-chunk latency low without a chatty transfer.
    uint32_t cap = opts_.maxFramePayload > 64 ? opts_.maxFramePayload - 64
                                              : 64;
    return std::min<uint32_t>(256u << 10, cap);
}

persist::LoadedArtifact
MatchServer::resolveSwapTarget(uint64_t fingerprint,
                               const std::string &source)
{
    persist::LoadedArtifact loaded;
    if (opts_.swapLoader) {
        loaded = opts_.swapLoader(fingerprint, source);
    } else {
        CA_FATAL_IF(source.empty(),
                    "net: SWAP by fingerprint needs a swap loader "
                        "(peers or cache); give a source path instead");
        loaded = persist::loadArtifact(source);
    }
    CA_FATAL_IF(!loaded.automaton, "net: swap loader returned no automaton");
    CA_FATAL_IF(fingerprint != 0 &&
                    persist::artifactFingerprint(*loaded.automaton) !=
                        fingerprint,
                "net: swap target does not hash to the requested "
                    "fingerprint");
    return loaded;
}

StatsReplyBody
MatchServer::statsSnapshot(uint64_t token, uint32_t sections) const
{
    StatsReplyBody body;
    body.token = token;
    body.sections = sections & kStatsAllSections;
    body.telemetryCompiled = CA_TELEMETRY ? 1 : 0;
    body.telemetryEnabled = telemetry::enabled() ? 1 : 0;

    // Totals, Sessions, and Kernels come from one inspect() pass per
    // epoch, gathered under one epoch snapshot, so the sections describe
    // the same generation set: the serving epoch plus any still-draining
    // retired epochs.
    if (body.sections & (statsSectionBit(StatsSection::Totals) |
                         statsSectionBit(StatsSection::Sessions) |
                         statsSectionBit(StatsSection::Kernels))) {
        std::vector<std::shared_ptr<EpochState>> epochs;
        runtime::ServerStats totals;
        size_t draining = 0;
        {
            std::lock_guard<std::mutex> lock(epoch_mutex_);
            totals = reaped_totals_;
            draining = retired_.size();
            epochs.push_back(current_);
            epochs.insert(epochs.end(), retired_.begin(), retired_.end());
        }
        runtime::ServerInspect in; // current epoch first: its workers win
        for (size_t i = 0; i < epochs.size(); ++i) {
            runtime::ServerInspect ei = epochs[i]->stream->inspect();
            accumulate(totals, ei.totals);
            if (i == 0) {
                in = std::move(ei);
            } else {
                in.sessions.insert(in.sessions.end(), ei.sessions.begin(),
                                   ei.sessions.end());
                in.kernels.insert(in.kernels.end(), ei.kernels.begin(),
                                  ei.kernels.end());
            }
        }
        if (body.sections & statsSectionBit(StatsSection::Totals)) {
            WireServerTotals &t = body.totals;
            t.uptimeMicros = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - started_)
                    .count());
            t.workers = static_cast<uint32_t>(in.workers);
            t.activeConnections = active_.load();
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                t.connectionsAccepted = stats_.connectionsAccepted;
                t.connectionsRejected = stats_.connectionsRejected;
                t.connectionsClosed = stats_.connectionsClosed;
                t.streamsOpened = stats_.streamsOpened;
                t.streamsClosed = stats_.streamsClosed;
                t.framesIn = stats_.framesIn;
                t.framesOut = stats_.framesOut;
                t.bytesIn = stats_.bytesIn;
                t.bytesOut = stats_.bytesOut;
                t.reportsSent = stats_.reportsSent;
                t.scoredReportsSent = stats_.scoredReportsSent;
                t.protocolErrors = stats_.protocolErrors;
                t.idleTimeouts = stats_.idleTimeouts;
                t.writeTimeouts = stats_.writeTimeouts;
                t.slowConsumerDrops = stats_.slowConsumerDrops;
                t.swapsCompleted = stats_.swapsCompleted;
                t.swapsFailed = stats_.swapsFailed;
                t.epochsRetired = stats_.epochsRetired;
                t.artifactQueries = stats_.artifactQueries;
                t.artifactChunksServed = stats_.artifactChunksServed;
                t.artifactBytesServed = stats_.artifactBytesServed;
            }
            t.epoch = epoch_no_.load();
            t.automatonFp = fingerprint_.load();
            t.automatonWeighted =
                epochs[0]->mapped->nfa().hasWeights() ? 1 : 0;
            t.epochsDraining = static_cast<uint64_t>(draining);
            t.sessionsOpened = totals.sessionsOpened;
            t.sessionsClosed = totals.sessionsClosed;
            t.streamSymbols = totals.symbols;
            t.streamReports = totals.reports;
            t.slices = totals.slices;
            t.contextSwitches = totals.contextSwitches;
        }
        if (body.sections & statsSectionBit(StatsSection::Sessions))
            body.sessions = std::move(in.sessions);
        if (body.sections & statsSectionBit(StatsSection::Kernels))
            body.kernels = std::move(in.kernels);
    }

    // The Metrics section ships whatever the registry holds — empty in
    // a telemetry-off build, which still serializes to a valid image
    // (the reply's telemetryCompiled/telemetryEnabled flags say why).
    if (body.sections & statsSectionBit(StatsSection::Metrics))
        body.metricsSnapshot =
            telemetry::MetricsRegistry::global().snapshot().serialize();
    return body;
}

void
MatchServer::acceptLoop(SocketFd &listener, bool admin)
{
    while (!stopping_.load()) {
        SocketFd fd = acceptTcp(listener, 100);
        reapFinishedConnections();
        reapRetiredEpochs();
        if (!fd.valid())
            continue;
        if (stopping_.load())
            break;

        if (active_.load() >= opts_.maxConnections) {
            // Admission control: explicit BUSY, then the door closes.
            // The cap protects the connections already being served.
            std::vector<uint8_t> err;
            appendError(err, ErrorCode::Busy, kConnectionStream,
                        "connection limit reached");
            sendAll(fd.get(), err.data(), err.size(), 1000);
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.connectionsRejected;
            }
            CA_COUNTER_ADD("ca.net.connections_rejected", 1);
            continue;
        }

        auto conn = std::make_unique<Connection>();
        conn->id = next_conn_id_++;
        conn->fd = std::move(fd);
        conn->isAdmin = admin;
        conn->sink = std::make_unique<ConnectionSink>(*this, *conn);
        active_.fetch_add(1);
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.connectionsAccepted;
        }
        CA_COUNTER_ADD("ca.net.connections_accepted", 1);
        CA_GAUGE_SET("ca.net.connections_open", active_.load());

        Connection &c = *conn;
        c.writer = std::thread([this, &c] { writerLoop(c); });
        c.reader = std::thread([this, &c] { readerLoop(c); });
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns_.push_back(std::move(conn));
    }
}

void
MatchServer::reapFinishedConnections()
{
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
            if ((*it)->reader.joinable())
                (*it)->reader.join();
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
MatchServer::enqueueFrame(Connection &c, std::vector<uint8_t> frame)
{
    bool drop = false;
    {
        std::lock_guard<std::mutex> lock(c.out_mutex);
        if (c.failed.load())
            return; // connection already condemned; frames are void
        c.outBytes += frame.size();
        c.outq.push_back(std::move(frame));
        if (c.outBytes > opts_.maxOutgoingBytes) {
            // Slow consumer: the client is not draining REPORTS. Sinks
            // must never block a worker, so the only bounded-memory
            // answer is to drop the connection.
            c.failed.store(true);
            c.outq.clear();
            c.outBytes = 0;
            drop = true;
        }
    }
    c.out_cv.notify_one();
    if (drop) {
        c.fd.shutdown(SHUT_RDWR); // unblock both threads
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.slowConsumerDrops;
        }
        CA_COUNTER_ADD("ca.net.slow_consumer_drops", 1);
    }
}

void
MatchServer::writerLoop(Connection &c)
{
    for (;;) {
        std::vector<uint8_t> frame;
        {
            std::unique_lock<std::mutex> lock(c.out_mutex);
            c.out_cv.wait(lock, [&] {
                return c.failed.load() || c.drainStop || !c.outq.empty();
            });
            if (c.failed.load())
                return;
            if (c.outq.empty()) {
                if (c.drainStop)
                    return; // graceful: queue flushed, nothing pending
                continue;
            }
            frame = std::move(c.outq.front());
            c.outq.pop_front();
            c.outBytes -= frame.size();
        }
        if (!sendAll(c.fd.get(), frame.data(), frame.size(),
                     opts_.writeTimeoutMs)) {
            c.failed.store(true);
            c.fd.shutdown(SHUT_RDWR); // unblock the reader's poll
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.writeTimeouts;
            }
            CA_COUNTER_ADD("ca.net.write_timeouts", 1);
            c.out_cv.notify_all();
            return;
        }
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.framesOut;
            stats_.bytesOut += frame.size();
        }
        CA_COUNTER_ADD("ca.net.frames_out", 1);
        CA_COUNTER_ADD("ca.net.bytes_out", frame.size());
    }
}

void
MatchServer::failConnection(Connection &c, ErrorCode code,
                            uint32_t streamId, const std::string &message)
{
    std::vector<uint8_t> err;
    appendError(err, code, streamId, message);
    enqueueFrame(c, std::move(err));
    c.ending = true;
}

void
MatchServer::closeConnectionStreams(Connection &c)
{
    // The swapped-out map keeps each StreamRef's epoch reference alive
    // through close(): a reap pass cannot destroy an epoch whose session
    // is still draining here.
    std::map<uint32_t, StreamRef> streams;
    {
        std::lock_guard<std::mutex> lock(c.streams_mutex);
        streams.swap(c.streams);
    }
    for (auto &[client_id, ref] : streams) {
        ref.session->close(); // drains queued input; reports still flow
        c.sink->unregisterStream(ref.session->id());
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.streamsClosed;
        }
        CA_COUNTER_ADD("ca.net.streams_closed", 1);
    }
}

bool
MatchServer::dispatchFrame(Connection &c, Frame &&f)
{
    if (!c.helloDone) {
        if (f.type != FrameType::Hello) {
            failConnection(c, ErrorCode::ProtocolError, kConnectionStream,
                           "expected HELLO as the first frame");
            return false;
        }
        CA_TRACE_SCOPE_CAT("ca.net.handshake", "ca.net");
        if (f.version < kMinProtocolVersion ||
            f.version > kProtocolVersion) {
            failConnection(c, ErrorCode::VersionMismatch,
                           kConnectionStream,
                           "unsupported protocol version " +
                               std::to_string(f.version));
            return false;
        }
        c.version = f.version;
        if (f.fingerprint != 0 && f.fingerprint != fingerprint_.load()) {
            failConnection(c, ErrorCode::FingerprintMismatch,
                           kConnectionStream,
                           "served automaton fingerprint differs");
            return false;
        }
        std::vector<uint8_t> reply;
        // Echo the negotiated version so older clients' equality checks
        // keep passing.
        appendHello(reply, fingerprint_.load(), c.version);
        enqueueFrame(c, std::move(reply));
        c.helloDone = true;
        return true;
    }

    switch (f.type) {
      case FrameType::Hello:
        failConnection(c, ErrorCode::ProtocolError, kConnectionStream,
                       "duplicate HELLO");
        return false;

      case FrameType::OpenStream: {
        CA_TRACE_SCOPE_CAT("ca.net.open_stream", "ca.net");
        // Pin the serving epoch first: a swap between here and the open
        // just means this stream rides the (now retired) epoch it
        // grabbed, which is exactly the drain semantics.
        std::shared_ptr<EpochState> epoch;
        {
            std::lock_guard<std::mutex> lock(epoch_mutex_);
            epoch = current_;
        }
        std::lock_guard<std::mutex> lock(c.streams_mutex);
        if (c.streams.count(f.streamId)) {
            failConnection(c, ErrorCode::DuplicateStream, f.streamId,
                           "stream id already open");
            return false;
        }
        if (c.streams.size() >= opts_.maxStreamsPerConnection) {
            failConnection(c, ErrorCode::StreamLimit, f.streamId,
                           "per-connection stream limit reached");
            return false;
        }
        runtime::StreamSession &session = epoch->stream->open(*c.sink);
        // Register the id mapping before any DATA can produce reports.
        c.sink->registerStream(session.id(), f.streamId,
                               epoch->mapped->nfa().hasWeights());
        c.streams.emplace(f.streamId,
                          StreamRef{&session, std::move(epoch)});
        {
            std::lock_guard<std::mutex> slock(stats_mutex_);
            ++stats_.streamsOpened;
        }
        CA_COUNTER_ADD("ca.net.streams_opened", 1);
        return true;
      }

      case FrameType::Data: {
        runtime::StreamSession *session = nullptr;
        {
            std::lock_guard<std::mutex> lock(c.streams_mutex);
            auto it = c.streams.find(f.streamId);
            if (it != c.streams.end())
                session = it->second.session;
        }
        if (!session) {
            failConnection(c, ErrorCode::UnknownStream, f.streamId,
                           "DATA for a stream that is not open");
            return false;
        }
        // Blocking submit is the backpressure path: a full session
        // queue parks this reader, the kernel receive buffer fills,
        // and TCP flow control stalls the client.
        session->submit(f.data.data(), f.data.size());
        return true;
      }

      case FrameType::Flush: {
        CA_TRACE_SCOPE_CAT("ca.net.flush", "ca.net");
        runtime::StreamSession *session = nullptr;
        {
            std::lock_guard<std::mutex> lock(c.streams_mutex);
            auto it = c.streams.find(f.streamId);
            if (it != c.streams.end())
                session = it->second.session;
        }
        if (!session) {
            failConnection(c, ErrorCode::UnknownStream, f.streamId,
                           "FLUSH for a stream that is not open");
            return false;
        }
        // flush() returns only after every prior chunk's reports went
        // through the sink — i.e. the REPORTS frames are already queued
        // ahead of this acknowledgement on the single writer queue.
        session->flush();
        std::vector<uint8_t> ack;
        appendFlush(ack, f.streamId, f.flushToken);
        enqueueFrame(c, std::move(ack));
        return true;
      }

      case FrameType::CloseStream: {
        CA_TRACE_SCOPE_CAT("ca.net.close_stream", "ca.net");
        // Move the ref out whole: its epoch stays referenced through
        // close(), so the reaper can never free the epoch under a
        // session that is still draining.
        StreamRef ref;
        {
            std::lock_guard<std::mutex> lock(c.streams_mutex);
            auto it = c.streams.find(f.streamId);
            if (it != c.streams.end()) {
                ref = std::move(it->second);
                c.streams.erase(it);
            }
        }
        if (!ref.session) {
            failConnection(c, ErrorCode::UnknownStream, f.streamId,
                           "CLOSE_STREAM for a stream that is not open");
            return false;
        }
        ref.session->close();
        c.sink->unregisterStream(ref.session->id());
        runtime::SessionStats st = ref.session->stats();
        std::vector<uint8_t> ack;
        appendCloseStream(ack, f.streamId, st.symbols, st.reports);
        enqueueFrame(c, std::move(ack));
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.streamsClosed;
        }
        CA_COUNTER_ADD("ca.net.streams_closed", 1);
        return true;
      }

      case FrameType::Goodbye: {
        std::vector<uint8_t> bye;
        appendGoodbye(bye);
        enqueueFrame(c, std::move(bye));
        return false; // reader tears down, closing remaining streams
      }

      case FrameType::Stats: {
        CA_TRACE_SCOPE_CAT("ca.net.stats", "ca.net");
        std::vector<uint8_t> reply;
        appendStatsReply(
            reply, statsSnapshot(f.stats.token, f.stats.sections));
        enqueueFrame(c, std::move(reply));
        return true;
      }

      case FrameType::ArtifactQuery: {
        CA_TRACE_SCOPE_CAT("ca.net.artifact_query", "ca.net");
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.artifactQueries;
        }
        CA_COUNTER_ADD("ca.cluster.artifact_queries", 1);
        std::shared_ptr<const std::vector<uint8_t>> bytes;
        if (opts_.serveArtifacts)
            bytes = artifactBytesFor(f.fingerprint);
        std::vector<uint8_t> reply;
        if (!bytes) {
            appendArtifactOffer(reply, f.fingerprint, false, 0, 0, 0);
        } else {
            uint32_t chunk = artifactChunkBytes();
            uint32_t count = static_cast<uint32_t>(
                (bytes->size() + chunk - 1) / chunk);
            appendArtifactOffer(reply, f.fingerprint, true, bytes->size(),
                                chunk, count);
        }
        enqueueFrame(c, std::move(reply));
        return true;
      }

      case FrameType::ArtifactFetch: {
        std::shared_ptr<const std::vector<uint8_t>> bytes;
        if (opts_.serveArtifacts)
            bytes = artifactBytesFor(f.fingerprint);
        if (!bytes) {
            failConnection(c, ErrorCode::ArtifactUnavailable,
                           kConnectionStream,
                           "no artifact for the requested fingerprint");
            return false;
        }
        uint32_t chunk = artifactChunkBytes();
        uint32_t count =
            static_cast<uint32_t>((bytes->size() + chunk - 1) / chunk);
        if (f.chunkIndex >= count) {
            failConnection(c, ErrorCode::ProtocolError, kConnectionStream,
                           "ARTIFACT_FETCH chunk index out of range");
            return false;
        }
        size_t off = static_cast<size_t>(f.chunkIndex) * chunk;
        size_t n = std::min<size_t>(chunk, bytes->size() - off);
        std::vector<uint8_t> reply;
        appendArtifactChunk(reply, f.fingerprint, f.chunkIndex, count,
                            bytes->data() + off, n);
        enqueueFrame(c, std::move(reply));
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.artifactChunksServed;
            stats_.artifactBytesServed += n;
        }
        CA_COUNTER_ADD("ca.cluster.artifact_chunks_served", 1);
        CA_COUNTER_ADD("ca.cluster.artifact_bytes_served", n);
        return true;
      }

      case FrameType::Swap: {
        CA_TRACE_SCOPE_CAT("ca.net.swap_request", "ca.net");
        if (!c.isAdmin) {
            // The match plane must not be able to change what everyone
            // else is served; SWAP belongs to the admin listener.
            failConnection(c, ErrorCode::PermissionDenied,
                           kConnectionStream,
                           "SWAP requires the admin listener");
            return false;
        }
        std::vector<uint8_t> reply;
        try {
            persist::LoadedArtifact loaded =
                resolveSwapTarget(f.fingerprint, f.message);
            SwapResult r = swap(std::move(loaded.automaton));
            appendSwapReply(reply, f.flushToken,
                            r.swapped ? SwapStatus::Swapped
                                      : SwapStatus::Unchanged,
                            r.oldFingerprint, r.newFingerprint, r.epoch,
                            std::string());
        } catch (const CaError &e) {
            // A failed swap is an answered request, not a connection
            // fault: the old epoch keeps serving untouched.
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.swapsFailed;
            }
            CA_COUNTER_ADD("ca.cluster.swaps_failed", 1);
            CA_WARN("net: swap failed: " << e.what());
            appendSwapReply(reply, f.flushToken, SwapStatus::Failed,
                            fingerprint_.load(), fingerprint_.load(),
                            epoch_no_.load(), e.what());
        }
        enqueueFrame(c, std::move(reply));
        return true;
      }

      case FrameType::Reports:
      case FrameType::ScoredReports:
      case FrameType::Error:
      case FrameType::StatsReply:
      case FrameType::ArtifactOffer:
      case FrameType::ArtifactChunk:
      case FrameType::SwapReply:
        failConnection(c, ErrorCode::ProtocolError, kConnectionStream,
                       "client sent a server-only frame");
        return false;
    }
    failConnection(c, ErrorCode::ProtocolError, kConnectionStream,
                   "unhandled frame type");
    return false;
}

void
MatchServer::readerLoop(Connection &c)
{
    FrameDecoder decoder(opts_.maxFramePayload);
    std::vector<uint8_t> buf(64u << 10);
    Clock::time_point last_activity = Clock::now();
    bool running = true;

    while (running && !stopping_.load() && !c.failed.load() && !c.ending) {
        try {
            std::optional<Frame> f;
            while (running && !c.ending && (f = decoder.next())) {
                {
                    std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.framesIn;
                }
                CA_COUNTER_ADD("ca.net.frames_in", 1);
                running = dispatchFrame(c, std::move(*f));
            }
        } catch (const CaError &e) {
            // Malformed frame: clean per-connection error + teardown;
            // the rest of the server keeps serving.
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.protocolErrors;
            }
            CA_COUNTER_ADD("ca.net.protocol_errors", 1);
            failConnection(c, ErrorCode::ProtocolError, kConnectionStream,
                           e.what());
            break;
        }
        if (!running || c.ending)
            break;

        long n = recvSome(c.fd.get(), buf.data(), buf.size(), 100);
        if (n > 0) {
            decoder.append(buf.data(), static_cast<size_t>(n));
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                stats_.bytesIn += static_cast<uint64_t>(n);
            }
            CA_COUNTER_ADD("ca.net.bytes_in", n);
            last_activity = Clock::now();
        } else if (n == 0 || n == -2) {
            break; // orderly EOF or peer reset: drain + close below
        } else if (opts_.idleTimeoutMs > 0 &&
                   Clock::now() - last_activity >
                       std::chrono::milliseconds(opts_.idleTimeoutMs)) {
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.idleTimeouts;
            }
            CA_COUNTER_ADD("ca.net.idle_timeouts", 1);
            failConnection(c, ErrorCode::IdleTimeout, kConnectionStream,
                           "no frame within the idle window");
            break;
        }
    }

    // Teardown: drain the connection's sessions first (their remaining
    // reports join the outgoing queue), then let the writer flush
    // everything queued, and only then release the socket.
    closeConnectionStreams(c);
    {
        std::lock_guard<std::mutex> lock(c.out_mutex);
        c.drainStop = true;
    }
    c.out_cv.notify_all();
    if (c.writer.joinable())
        c.writer.join();
    c.fd.close();

    active_.fetch_sub(1);
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connectionsClosed;
    }
    CA_COUNTER_ADD("ca.net.connections_closed", 1);
    CA_GAUGE_SET("ca.net.connections_open", active_.load());
    c.done.store(true);
}

} // namespace ca::net
