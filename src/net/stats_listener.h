/**
 * @file
 * Scrapeable stats endpoint: a tiny HTTP/1.0 listener that serves a
 * plain-text observability page (Prometheus exposition format by
 * default — docs/OBSERVABILITY.md).
 *
 * This is deliberately not a web server: it accepts one connection at a
 * time on a dedicated thread, reads the request line, answers with a
 * freshly rendered body, and closes. That is exactly the access pattern
 * of a Prometheus scraper or `curl`, and it keeps the listener's cost
 * and attack surface near zero — the render callback runs outside any
 * server lock, a stalled client can only stall its own response (write
 * timeout), and malformed requests get a 400 and a closed socket.
 *
 * The listener is transport only; what the page says comes from the
 * injected render callback (ca_server wires it to
 * MatchServer::statsSnapshot + MetricsSnapshot::prometheusText).
 */
#ifndef CA_NET_STATS_LISTENER_H
#define CA_NET_STATS_LISTENER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/socket.h"

namespace ca::net {

/** Configuration for one stats endpoint. */
struct StatsListenerOptions
{
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see StatsListener::port()). */
    uint16_t port = 0;
    /** Per-response write stall bound. */
    int writeTimeoutMs = 5'000;
    /** Bound on reading the request line from a dribbling client. */
    int readTimeoutMs = 2'000;
};

/**
 * Serves GET requests with the render callback's output
 * (Content-Type: text/plain; version=0.0.4 — the Prometheus text
 * format). Every request re-renders, so each scrape sees live values.
 */
class StatsListener
{
  public:
    /** Called per request; returns the full response body. */
    using Renderer = std::function<std::string()>;

    /**
     * Binds and starts the accept thread. @p render must be callable
     * until stop()/destruction and safe to call from the listener
     * thread. @throws CaError when the bind fails.
     */
    StatsListener(Renderer render, const StatsListenerOptions &opts = {});

    /** stop()s if still running. */
    ~StatsListener();

    StatsListener(const StatsListener &) = delete;
    StatsListener &operator=(const StatsListener &) = delete;

    /** The actually bound port (resolves port 0). */
    uint16_t port() const { return port_; }

    /** Closes the listener and joins the accept thread. Idempotent. */
    void stop();

    /** Requests served with a 200 so far. */
    uint64_t requestsServed() const { return served_.load(); }

  private:
    void acceptLoop();
    void serveOne(SocketFd client);

    Renderer render_;
    StatsListenerOptions opts_;
    SocketFd listener_;
    uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> served_{0};
};

} // namespace ca::net

#endif // CA_NET_STATS_LISTENER_H
