/**
 * @file
 * Blocking client for the TCP match service.
 *
 * The client mirrors the in-process StreamSession lifecycle over the
 * wire: connect (HELLO handshake, optional automaton-fingerprint pin) →
 * openStream → send chunks → flush (round-trip barrier: every report
 * for data sent before the flush is collected locally when it returns)
 * → closeStream (returns the server's final symbol/report accounting).
 *
 * Threading: one MatchClient is single-threaded — all calls must come
 * from one thread (use one client per connection thread; the server
 * multiplexes). Reports arrive asynchronously from the server and are
 * collected into per-stream buffers whenever the client touches the
 * socket; send() drains opportunistically so a server pushing REPORTS
 * can never deadlock against a client pushing DATA.
 *
 * Determinism contract (tests/net_test.cpp): the concatenation of
 * reports(stream) after flush/close is byte-identical to a
 * single-threaded CacheAutomatonSim::run() over the same bytes.
 */
#ifndef CA_NET_CLIENT_H
#define CA_NET_CLIENT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace ca::net {

/** Client-side connection configuration. */
struct ClientOptions
{
    /** Require this automaton fingerprint in HELLO (0 = accept any). */
    uint64_t expectedFingerprint = 0;
    /** DATA chunk ceiling; larger send()s are split. */
    uint32_t maxFramePayload = 1u << 20;
    int connectTimeoutMs = 10'000;
    /** Bound on any single blocking wait for server frames. */
    int ioTimeoutMs = 30'000;
};

/** Final server-side accounting for one closed stream. */
struct StreamSummary
{
    uint64_t symbols = 0;
    uint64_t reports = 0;
};

/** A peer's answer to ARTIFACT_QUERY (docs/CLUSTER.md). */
struct ArtifactOfferInfo
{
    uint64_t fingerprint = 0;
    bool available = false;
    uint64_t totalBytes = 0;
    uint32_t chunkBytes = 0;
    uint32_t chunkCount = 0;
};

/** Outcome of a requestSwap() admin call. */
struct SwapOutcome
{
    SwapStatus status = SwapStatus::Failed;
    uint64_t oldFingerprint = 0;
    uint64_t newFingerprint = 0;
    uint64_t epoch = 0;
    std::string message; ///< Failure reason when status == Failed.
};

/** One TCP connection to a MatchServer. */
class MatchClient
{
  public:
    MatchClient() = default;
    ~MatchClient();

    MatchClient(const MatchClient &) = delete;
    MatchClient &operator=(const MatchClient &) = delete;

    /**
     * Connects and completes the HELLO handshake. @throws CaError on
     * connection failure, version mismatch, fingerprint mismatch, or a
     * server-side ERROR (e.g. busy — admission control).
     */
    void connect(const std::string &host, uint16_t port,
                 const ClientOptions &opts = {});

    bool connected() const { return fd_.valid(); }

    /** The fingerprint the server announced in its HELLO. */
    uint64_t serverFingerprint() const { return server_fingerprint_; }

    /** Opens a stream; returns its connection-local id. */
    uint32_t openStream();

    /** Streams @p size bytes (split into DATA frames as needed). */
    void send(uint32_t stream, const uint8_t *data, size_t size);

    void
    send(uint32_t stream, const std::vector<uint8_t> &chunk)
    {
        send(stream, chunk.data(), chunk.size());
    }

    /**
     * Round-trip barrier: returns once the server acknowledges that
     * everything sent on @p stream before this call has been simulated
     * and its reports delivered (and therefore collected locally).
     */
    void flush(uint32_t stream);

    /**
     * Declares end-of-stream; returns the server's final accounting
     * once the stream has fully drained. The stream id is dead after.
     */
    StreamSummary closeStream(uint32_t stream);

    /**
     * Reports collected so far for @p stream, in stream order (complete
     * after flush()/closeStream()). Buffers survive closeStream() until
     * takeReports() or disconnect.
     */
    const std::vector<Report> &reports(uint32_t stream) const;

    /** Moves out (and clears) the collected reports for @p stream. */
    std::vector<Report> takeReports(uint32_t stream);

    /**
     * In-band observability poll: sends STATS and blocks for the
     * matching STATS_REPLY (REPORTS arriving in between are absorbed
     * into their buffers as usual). @p sections selects which
     * StatsSection bits the server should fill; check the reply's
     * telemetryCompiled/telemetryEnabled flags before reading Metrics.
     */
    StatsReplyBody requestStats(uint32_t sections = kStatsAllSections);

    /**
     * Asks whether the server can serve the artifact for
     * @p fingerprint and, when it can, how it would be chunked.
     */
    ArtifactOfferInfo queryArtifact(uint64_t fingerprint);

    /**
     * Pulls the complete CAAF artifact for @p fingerprint chunk by
     * chunk (each chunk CRC-verified at the protocol layer; callers
     * should still validate the assembled bytes with
     * persist::loadArtifactBytes — see cluster::Replicator). @throws
     * CaError when the server does not hold the artifact or the
     * transfer is inconsistent/truncated.
     */
    std::vector<uint8_t> fetchArtifact(uint64_t fingerprint);

    /**
     * Admin-plane ruleset swap (connect to the server's admin port
     * first — the match plane answers ERROR(permission_denied)).
     * @p fingerprint pins the target (0 = trust @p source); @p source
     * is a server-side artifact path or loader hint. Never throws on a
     * *failed* swap — that comes back as status == SwapStatus::Failed
     * with the server's reason.
     */
    SwapOutcome requestSwap(uint64_t fingerprint,
                            const std::string &source = {});

    /** Polite GOODBYE + orderly close (abortive close if it fails). */
    void close();

  private:
    /** Sends bytes, draining inbound frames while the socket is full. */
    void sendDraining(const uint8_t *data, size_t size);

    /** Non-blocking drain of whatever the server has already sent. */
    void drainIncoming();

    /**
     * Blocks until a frame of @p type for @p stream arrives, absorbing
     * REPORTS along the way. @throws CaError on ERROR frames, EOF, or
     * timeout.
     */
    Frame awaitFrame(FrameType type, uint32_t stream);

    /** Reads one chunk off the socket into the decoder. */
    bool pump(int timeout_ms);

    /** Routes a received frame (REPORTS → buffers; ERROR → throw). */
    void absorb(Frame &&f, std::vector<Frame> &out);

    SocketFd fd_;
    ClientOptions opts_;
    FrameDecoder decoder_;
    uint64_t server_fingerprint_ = 0;
    uint32_t next_stream_id_ = 1;
    uint64_t next_flush_token_ = 1;
    std::map<uint32_t, std::vector<Report>> collected_;
    std::vector<uint8_t> rxbuf_;
};

} // namespace ca::net

#endif // CA_NET_CLIENT_H
