/**
 * @file
 * Minimal POSIX TCP socket helpers shared by the match server and the
 * client library.
 *
 * Everything here is a thin, RAII-safe wrapper over the portable socket
 * calls (socket/bind/listen/accept/connect/poll/send/recv): no event
 * framework, no nonblocking state machine — the net layer's threading
 * model is blocking reader/writer threads, and poll() supplies the
 * timeouts. All failures surface as CaError with errno text.
 */
#ifndef CA_NET_SOCKET_H
#define CA_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ca::net {

/** Owning file-descriptor handle (closes on destruction, movable). */
class SocketFd
{
  public:
    SocketFd() = default;
    explicit SocketFd(int fd) : fd_(fd) {}
    ~SocketFd() { close(); }

    SocketFd(SocketFd &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    SocketFd &
    operator=(SocketFd &&o) noexcept
    {
        if (this != &o) {
            close();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    SocketFd(const SocketFd &) = delete;
    SocketFd &operator=(const SocketFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Releases ownership without closing. */
    int release();

    void close();

    /** shutdown(2); @p how is SHUT_RD / SHUT_WR / SHUT_RDWR. */
    void shutdown(int how);

  private:
    int fd_ = -1;
};

/**
 * Creates, binds, and listens on @p address:@p port (IPv4 dotted quad or
 * "localhost"; port 0 picks an ephemeral port). SO_REUSEADDR is set.
 */
SocketFd listenTcp(const std::string &address, uint16_t port,
                   int backlog = 64);

/** The locally bound port of a listening (or connected) socket. */
uint16_t localPort(const SocketFd &fd);

/**
 * Accepts one connection; blocks up to @p timeout_ms (<0 = forever).
 * Returns an invalid SocketFd on timeout or on a benign interrupted /
 * aborted accept; throws CaError on a fatal listener error.
 */
SocketFd acceptTcp(const SocketFd &listener, int timeout_ms);

/** Connects to @p host:@p port, blocking up to @p timeout_ms. */
SocketFd connectTcp(const std::string &host, uint16_t port,
                    int timeout_ms);

/**
 * Waits until @p fd is readable. Returns false on timeout; throws
 * CaError on poll failure.
 */
bool waitReadable(int fd, int timeout_ms);

/** Waits until @p fd is writable. Returns false on timeout. */
bool waitWritable(int fd, int timeout_ms);

/**
 * Sends the whole buffer, waiting (poll) up to @p timeout_ms for each
 * continuation. Returns false if the peer reset / the timeout expired;
 * never raises SIGPIPE.
 */
bool sendAll(int fd, const uint8_t *data, size_t size, int timeout_ms);

/**
 * One recv() of at most @p size bytes once the socket is readable.
 * Returns >0 bytes read, 0 on orderly EOF, -1 on timeout, -2 on
 * connection error.
 */
long recvSome(int fd, uint8_t *data, size_t size, int timeout_ms);

} // namespace ca::net

#endif // CA_NET_SOCKET_H
