#include "net/client.h"

#include <cerrno>
#include <sys/socket.h>

#include "core/error.h"
#include "telemetry/telemetry.h"

namespace ca::net {

MatchClient::~MatchClient()
{
    if (fd_.valid())
        close();
}

void
MatchClient::connect(const std::string &host, uint16_t port,
                     const ClientOptions &opts)
{
    CA_TRACE_SCOPE_CAT("ca.net.client_connect", "ca.net");
    CA_FATAL_IF(fd_.valid(), "net: client is already connected");
    opts_ = opts;
    decoder_ = FrameDecoder(kMaxFramePayload);
    rxbuf_.assign(64u << 10, 0);
    fd_ = connectTcp(host, port, opts_.connectTimeoutMs);

    std::vector<uint8_t> hello;
    appendHello(hello, opts_.expectedFingerprint);
    sendDraining(hello.data(), hello.size());

    Frame reply = awaitFrame(FrameType::Hello, kConnectionStream);
    CA_FATAL_IF(reply.version != kProtocolVersion,
                "net: server speaks protocol v" << reply.version
                    << ", this client v" << kProtocolVersion);
    server_fingerprint_ = reply.fingerprint;
    CA_FATAL_IF(opts_.expectedFingerprint != 0 &&
                    server_fingerprint_ != opts_.expectedFingerprint,
                "net: server automaton fingerprint mismatch");
}

uint32_t
MatchClient::openStream()
{
    CA_FATAL_IF(!fd_.valid(), "net: openStream before connect");
    uint32_t id = next_stream_id_++;
    std::vector<uint8_t> frame;
    appendOpenStream(frame, id);
    sendDraining(frame.data(), frame.size());
    collected_[id]; // materialize the report buffer
    CA_COUNTER_ADD("ca.net.client_streams_opened", 1);
    return id;
}

void
MatchClient::send(uint32_t stream, const uint8_t *data, size_t size)
{
    CA_FATAL_IF(!fd_.valid(), "net: send before connect");
    size_t max_chunk = opts_.maxFramePayload - 4;
    std::vector<uint8_t> frame;
    for (size_t pos = 0; pos < size || (size == 0 && pos == 0);) {
        size_t n = std::min(max_chunk, size - pos);
        frame.clear();
        appendData(frame, stream, data + pos, n);
        sendDraining(frame.data(), frame.size());
        pos += n;
        if (size == 0)
            break;
    }
    CA_COUNTER_ADD("ca.net.client_bytes_sent", size);
}

void
MatchClient::flush(uint32_t stream)
{
    CA_TRACE_SCOPE_CAT("ca.net.client_flush", "ca.net");
    CA_FATAL_IF(!fd_.valid(), "net: flush before connect");
    uint64_t token = next_flush_token_++;
    std::vector<uint8_t> frame;
    appendFlush(frame, stream, token);
    sendDraining(frame.data(), frame.size());
    for (;;) {
        Frame ack = awaitFrame(FrameType::Flush, stream);
        if (ack.flushToken == token)
            return; // older tokens (pipelined flushes) are absorbed
    }
}

StreamSummary
MatchClient::closeStream(uint32_t stream)
{
    CA_TRACE_SCOPE_CAT("ca.net.client_close_stream", "ca.net");
    CA_FATAL_IF(!fd_.valid(), "net: closeStream before connect");
    std::vector<uint8_t> frame;
    appendCloseStream(frame, stream);
    sendDraining(frame.data(), frame.size());
    Frame ack = awaitFrame(FrameType::CloseStream, stream);
    return StreamSummary{ack.symbols, ack.reports};
}

StatsReplyBody
MatchClient::requestStats(uint32_t sections)
{
    CA_TRACE_SCOPE_CAT("ca.net.client_stats", "ca.net");
    CA_FATAL_IF(!fd_.valid(), "net: requestStats before connect");
    uint64_t token = next_flush_token_++;
    std::vector<uint8_t> frame;
    appendStats(frame, token, sections);
    sendDraining(frame.data(), frame.size());
    for (;;) {
        Frame reply = awaitFrame(FrameType::StatsReply,
                                 kConnectionStream);
        if (reply.stats.token == token)
            return std::move(reply.stats);
        // Older tokens (pipelined polls) are absorbed, like flush().
    }
}

ArtifactOfferInfo
MatchClient::queryArtifact(uint64_t fingerprint)
{
    CA_TRACE_SCOPE_CAT("ca.net.client_artifact_query", "ca.net");
    CA_FATAL_IF(!fd_.valid(), "net: queryArtifact before connect");
    std::vector<uint8_t> frame;
    appendArtifactQuery(frame, fingerprint);
    sendDraining(frame.data(), frame.size());
    Frame reply = awaitFrame(FrameType::ArtifactOffer, kConnectionStream);
    CA_FATAL_IF(reply.fingerprint != fingerprint,
                "net: ARTIFACT_OFFER for a different fingerprint");
    ArtifactOfferInfo offer;
    offer.fingerprint = reply.fingerprint;
    offer.available = reply.artifactAvailable != 0;
    offer.totalBytes = reply.artifactBytes;
    offer.chunkBytes = reply.chunkBytes;
    offer.chunkCount = reply.chunkCount;
    return offer;
}

std::vector<uint8_t>
MatchClient::fetchArtifact(uint64_t fingerprint)
{
    CA_TRACE_SCOPE_CAT("ca.net.client_artifact_fetch", "ca.net");
    ArtifactOfferInfo offer = queryArtifact(fingerprint);
    CA_FATAL_IF(!offer.available,
                "net: peer does not hold the requested artifact");
    // Sanity-bound a hostile offer before allocating anything: chunk
    // geometry must be consistent, and an artifact is never gigabytes.
    constexpr uint64_t kMaxArtifactBytes = 1ull << 30;
    CA_FATAL_IF(offer.totalBytes == 0 ||
                    offer.totalBytes > kMaxArtifactBytes,
                "net: implausible artifact size " << offer.totalBytes);
    CA_FATAL_IF(offer.chunkBytes == 0 || offer.chunkCount == 0 ||
                    (offer.totalBytes + offer.chunkBytes - 1) /
                            offer.chunkBytes !=
                        offer.chunkCount,
                "net: inconsistent artifact chunk geometry");

    std::vector<uint8_t> bytes;
    bytes.reserve(static_cast<size_t>(offer.totalBytes));
    for (uint32_t i = 0; i < offer.chunkCount; ++i) {
        std::vector<uint8_t> frame;
        appendArtifactFetch(frame, fingerprint, i);
        sendDraining(frame.data(), frame.size());
        Frame chunk =
            awaitFrame(FrameType::ArtifactChunk, kConnectionStream);
        CA_FATAL_IF(chunk.fingerprint != fingerprint ||
                        chunk.chunkIndex != i ||
                        chunk.chunkCount != offer.chunkCount,
                    "net: artifact chunk out of sequence");
        CA_FATAL_IF(bytes.size() + chunk.data.size() > offer.totalBytes,
                    "net: artifact transfer exceeds the offered size");
        bytes.insert(bytes.end(), chunk.data.begin(), chunk.data.end());
    }
    CA_FATAL_IF(bytes.size() != offer.totalBytes,
                "net: truncated artifact transfer ("
                    << bytes.size() << " of " << offer.totalBytes
                    << " bytes)");
    CA_COUNTER_ADD("ca.net.client_artifact_bytes_fetched", bytes.size());
    return bytes;
}

SwapOutcome
MatchClient::requestSwap(uint64_t fingerprint, const std::string &source)
{
    CA_TRACE_SCOPE_CAT("ca.net.client_swap", "ca.net");
    CA_FATAL_IF(!fd_.valid(), "net: requestSwap before connect");
    uint64_t token = next_flush_token_++;
    std::vector<uint8_t> frame;
    appendSwap(frame, token, fingerprint, source);
    sendDraining(frame.data(), frame.size());
    for (;;) {
        Frame reply = awaitFrame(FrameType::SwapReply, kConnectionStream);
        if (reply.flushToken != token)
            continue; // older tokens (pipelined requests) are absorbed
        SwapOutcome out;
        out.status = reply.swapStatus;
        out.oldFingerprint = reply.oldFingerprint;
        out.newFingerprint = reply.newFingerprint;
        out.epoch = reply.epoch;
        out.message = std::move(reply.message);
        if (out.status != SwapStatus::Failed)
            server_fingerprint_ = out.newFingerprint;
        return out;
    }
}

const std::vector<Report> &
MatchClient::reports(uint32_t stream) const
{
    static const std::vector<Report> kEmpty;
    auto it = collected_.find(stream);
    return it == collected_.end() ? kEmpty : it->second;
}

std::vector<Report>
MatchClient::takeReports(uint32_t stream)
{
    auto it = collected_.find(stream);
    if (it == collected_.end())
        return {};
    std::vector<Report> out = std::move(it->second);
    collected_.erase(it);
    return out;
}

void
MatchClient::close()
{
    if (!fd_.valid())
        return;
    try {
        std::vector<uint8_t> bye;
        appendGoodbye(bye);
        sendDraining(bye.data(), bye.size());
        (void)awaitFrame(FrameType::Goodbye, kConnectionStream);
    } catch (const CaError &) {
        // Abortive close: the peer is gone or misbehaving; the socket
        // teardown below is all that is left to do.
    }
    fd_.close();
}

void
MatchClient::sendDraining(const uint8_t *data, size_t size)
{
    size_t sent = 0;
    while (sent < size) {
        long n = ::send(fd_.get(), data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR)) {
            // The socket is full — likely because the server is pushing
            // REPORTS we have not read. Drain them instead of deadlocking
            // (server blocked writing reports ⇄ client blocked writing
            // DATA is the classic distributed cycle).
            drainIncoming();
            if (!waitWritable(fd_.get(), 50))
                continue;
            continue;
        }
        CA_THROW("net: connection lost while sending");
    }
}

void
MatchClient::drainIncoming()
{
    while (waitReadable(fd_.get(), 0)) {
        if (!pump(0))
            return;
        std::vector<Frame> frames;
        std::optional<Frame> f;
        while ((f = decoder_.next()))
            absorb(std::move(*f), frames);
        CA_FATAL_IF(!frames.empty(),
                    "net: unexpected "
                        << static_cast<unsigned>(frames.front().type)
                        << " frame outside a request");
    }
}

bool
MatchClient::pump(int timeout_ms)
{
    long n = recvSome(fd_.get(), rxbuf_.data(), rxbuf_.size(), timeout_ms);
    if (n > 0) {
        decoder_.append(rxbuf_.data(), static_cast<size_t>(n));
        return true;
    }
    if (n == -1)
        return false; // timeout; caller decides
    CA_THROW("net: server closed the connection");
}

void
MatchClient::absorb(Frame &&f, std::vector<Frame> &out)
{
    switch (f.type) {
      case FrameType::Reports:
      case FrameType::ScoredReports: {
        // Scored rows land in the same per-stream buffer: Report carries
        // the score field, and unscored rows keep it at 0.
        auto &buf = collected_[f.streamId];
        buf.insert(buf.end(), f.reportBatch.begin(), f.reportBatch.end());
        CA_COUNTER_ADD("ca.net.client_reports", f.reportBatch.size());
        return;
      }
      case FrameType::Error:
        CA_THROW("net: server error (" << errorCodeName(f.errorCode)
                                       << "): " << f.message);
      default:
        out.push_back(std::move(f));
        return;
    }
}

Frame
MatchClient::awaitFrame(FrameType type, uint32_t stream)
{
    for (;;) {
        std::optional<Frame> f;
        while ((f = decoder_.next())) {
            std::vector<Frame> misc;
            absorb(std::move(*f), misc);
            for (Frame &m : misc) {
                bool match = m.type == type &&
                    (stream == kConnectionStream ||
                     m.streamId == stream);
                if (match)
                    return std::move(m);
                CA_THROW("net: unexpected frame type "
                         << static_cast<unsigned>(m.type)
                         << " while awaiting "
                         << static_cast<unsigned>(type));
            }
        }
        if (!pump(opts_.ioTimeoutMs))
            CA_THROW("net: timed out waiting for server reply ("
                     << opts_.ioTimeoutMs << " ms)");
    }
}

} // namespace ca::net
